"""Fault-injection subsystem tests: determinism, accounting, scoping,
and the host-level rules."""

import pytest

from repro.errors import ConfigurationError, DeadlockError
from repro.faults import (
    CORRUPT,
    DELIVER,
    DROP,
    DUPLICATE,
    FaultInjector,
    FaultPlan,
    LinkDown,
    NodeCrash,
    NodePause,
    NodeSlow,
    PacketCorruption,
    PacketDuplication,
    PacketLoss,
)
from repro.mpi import World
from repro.net.kernel import KernelParams
from repro.sim import Simulator

LOSSY_KP = KernelParams().with_overrides(rto=8_000.0)


# ---------------------------------------------------------------------------
# plan / rule validation
# ---------------------------------------------------------------------------


def test_rule_validation():
    with pytest.raises(ConfigurationError):
        PacketLoss(probability=1.5)
    with pytest.raises(ConfigurationError):
        PacketDuplication(probability=-0.1)
    with pytest.raises(ConfigurationError):
        PacketCorruption(probability=2.0)
    with pytest.raises(ConfigurationError):
        PacketLoss(probability=0.5, fabric="myrinet")
    with pytest.raises(ConfigurationError):
        PacketLoss(probability=0.5, t_start=10.0, t_end=5.0)
    with pytest.raises(ConfigurationError):
        NodeSlow(node=0, factor=0.0)
    with pytest.raises(ConfigurationError):
        FaultPlan.of("not a rule")


def test_plan_is_immutable_and_composable():
    plan = FaultPlan.loss(0.1, fabric="ethernet")
    plan2 = plan.add(NodeCrash(node=1, at=50.0))
    assert len(plan.rules) == 1 and len(plan2.rules) == 2
    assert plan2.crashed_nodes() == [1]
    assert [type(r) for r in plan2.host_rules()] == [NodeCrash]


def test_injector_rejects_unknown_fabric():
    with pytest.raises(ConfigurationError):
        FaultPlan.loss(0.1).injector("token-ring", Simulator())


# ---------------------------------------------------------------------------
# injector decision semantics (no MPI involved)
# ---------------------------------------------------------------------------


def test_injector_same_seed_same_decisions():
    plan = FaultPlan.of(
        PacketLoss(probability=0.2),
        PacketCorruption(probability=0.1),
        PacketDuplication(probability=0.1),
    )

    def stream(seed):
        inj = plan.injector("ethernet", Simulator(), seed=seed)
        return [inj.decide(0, 1, 100) for _ in range(200)]

    assert stream(7) == stream(7)
    assert stream(7) != stream(8)  # different seed, different stream
    kinds = set(stream(7))
    assert {DELIVER, DROP}.issubset(kinds)


def test_deterministic_rules_do_not_consume_rng():
    """A LinkDown firing must not shift the random stream: the fates of
    all *other* deliveries are identical with and without it."""
    base = FaultPlan.of(PacketLoss(probability=0.3))
    with_down = FaultPlan.of(
        LinkDown(src=5, dst=6, t_start=0.0), PacketLoss(probability=0.3)
    )

    inj_a = base.injector("atm", Simulator(), seed=3)
    inj_b = with_down.injector("atm", Simulator(), seed=3)
    fates_a, fates_b = [], []
    for i in range(100):
        fates_a.append(inj_a.decide(0, 1))
        fates_b.append(inj_b.decide(0, 1))
        assert inj_b.decide(5, 6) == DROP  # deterministic, no RNG draw
    assert fates_a == fates_b


def test_time_window_scoping():
    sim = Simulator()
    inj = FaultPlan.of(
        PacketLoss(probability=1.0, t_start=10.0, t_end=20.0)
    ).injector("ethernet", sim, seed=0)

    def at(t):
        def tick():
            yield sim.timeout(t - sim.now)

        sim.process(tick())
        sim.run()
        return inj.decide(0, 1)

    assert at(5.0) == DELIVER
    assert at(10.0) == DROP
    assert at(19.9) == DROP
    assert at(20.0) == DELIVER  # half-open window


def test_src_dst_and_fabric_scoping():
    inj = FaultPlan.of(
        PacketLoss(probability=1.0, src=0, dst=1, fabric="ethernet")
    ).injector("ethernet", Simulator(), seed=0)
    assert inj.decide(0, 1) == DROP
    assert inj.decide(1, 0) == DELIVER
    assert inj.decide(0, 2) == DELIVER
    # same plan compiled for another fabric: rule out of scope
    inj2 = FaultPlan.of(
        PacketLoss(probability=1.0, src=0, dst=1, fabric="ethernet")
    ).injector("atm", Simulator(), seed=0)
    assert inj2.decide(0, 1) == DELIVER


def test_max_events_cap():
    inj = FaultPlan.of(
        PacketLoss(probability=1.0, max_events=2)
    ).injector("ethernet", Simulator(), seed=0)
    fates = [inj.decide(0, 1) for _ in range(5)]
    assert fates == [DROP, DROP, DELIVER, DELIVER, DELIVER]
    assert inj.rule_events == [2]


def test_duplication_never_matches_meiko():
    inj = FaultPlan.of(
        PacketDuplication(probability=1.0)
    ).injector("meiko", Simulator(), seed=0)
    assert all(inj.decide(0, 1) == DELIVER for _ in range(10))
    eth = FaultPlan.of(
        PacketDuplication(probability=1.0)
    ).injector("ethernet", Simulator(), seed=0)
    assert eth.decide(0, 1) == DUPLICATE


# ---------------------------------------------------------------------------
# end-to-end determinism: same seed + same plan => identical timeline
# ---------------------------------------------------------------------------


def _traced_exchange(platform, plan, seed, msgs=15, nbytes=300):
    """Run a bidirectional exchange; return (trace, fabric counters)."""

    def main(comm):
        other = 1 - comm.rank
        trace = []
        for i in range(msgs):
            req = yield from comm.isend(bytes([i % 251]) * nbytes,
                                        dest=other, tag=3)
            data, st = yield from comm.recv(source=other, tag=3)
            yield from comm.wait(req)
            trace.append((comm.wtime(), comm.rank, i, len(data), st.source))
        return trace

    world = World(2, platform=platform, faults=plan,
                  kernel_params=LOSSY_KP, seed=seed)
    traces = world.run(main)
    fabric = world.platform.machine.fabric
    counters = {
        "dropped": getattr(fabric, "frames_dropped", 0) + getattr(fabric, "pdus_dropped", 0),
        "corrupted": getattr(fabric, "frames_corrupted", 0) + getattr(fabric, "pdus_corrupted", 0),
        "duplicated": getattr(fabric, "frames_duplicated", 0) + getattr(fabric, "pdus_duplicated", 0),
        "now": world.sim.now,
        "injector": fabric.injector.summary(),
    }
    return traces, counters


@pytest.mark.parametrize("platform", ["ethernet", "atm"])
def test_same_seed_same_plan_identical_timeline(platform):
    plan = FaultPlan.of(
        PacketLoss(probability=0.08),
        PacketCorruption(probability=0.03),
        PacketDuplication(probability=0.03),
    )
    run1 = _traced_exchange(platform, plan, seed=5)
    run2 = _traced_exchange(platform, plan, seed=5)
    assert run1 == run2  # byte-identical trace, counters and end time
    run3 = _traced_exchange(platform, plan, seed=6)
    assert run3[1]["injector"] != run1[1]["injector"] or run3[0] != run1[0]


@pytest.mark.parametrize("platform", ["ethernet", "atm"])
def test_fabric_counters_match_plan_accounting(platform):
    """The fabric's observable counters agree with the injector's own
    accounting, and the faults were actually exercised."""
    plan = FaultPlan.of(
        PacketLoss(probability=0.10),
        PacketCorruption(probability=0.05),
    )
    _, counters = _traced_exchange(platform, plan, seed=2, msgs=25)
    summary = counters["injector"]
    assert counters["dropped"] == summary["drops"]
    assert counters["corrupted"] == summary["corruptions"]
    assert counters["duplicated"] == summary["duplicates"]
    assert summary["decisions"] > 0
    assert summary["drops"] + summary["corruptions"] > 0
    assert sum(summary["rule_events"]) == (
        summary["drops"] + summary["corruptions"] + summary["duplicates"]
    )


def test_lossy_run_still_correct_under_faultplan():
    """The FaultPlan equivalent of the legacy drop_fn stress test: MPI
    delivers every message exactly once, in order, over 10% loss."""

    def main(comm):
        other = 1 - comm.rank
        out = []
        for i in range(12):
            req = yield from comm.isend(bytes([i]) * 200, dest=other, tag=2)
            data, _ = yield from comm.recv(source=other, tag=2)
            yield from comm.wait(req)
            out.append(bytes(data))
        return out

    res = World(2, platform="ethernet", faults=FaultPlan.loss(0.10),
                kernel_params=LOSSY_KP, seed=3).run(main)
    for rank in range(2):
        assert res[rank] == [bytes([i]) * 200 for i in range(12)]


def test_meiko_accepts_faults_and_counts_drops():
    """The Meiko fabric honours loss rules; a window that swallows the
    eager payload leaves the job deadlocked and the watchdog reports it."""

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"x" * 64, dest=1, tag=1)
        else:
            yield from comm.recv(source=0, tag=1)

    world = World(2, platform="meiko", faults=FaultPlan.loss(1.0), seed=0)
    with pytest.raises(DeadlockError):
        world.run(main)
    assert world.platform.machine.network.packets_dropped > 0


# ---------------------------------------------------------------------------
# host-level rules
# ---------------------------------------------------------------------------


def _timed_pingpong(platform="ethernet", faults=None, msgs=6):
    def main(comm):
        other = 1 - comm.rank
        for i in range(msgs):
            if comm.rank == 0:
                yield from comm.send(b"x" * 100, dest=other, tag=1)
                yield from comm.recv(source=other, tag=1)
            else:
                yield from comm.recv(source=other, tag=1)
                yield from comm.send(b"x" * 100, dest=other, tag=1)
        return comm.wtime()

    world = World(2, platform=platform, faults=faults, seed=0)
    return max(world.run(main))


def test_node_slow_stretches_runtime():
    base = _timed_pingpong()
    slowed = _timed_pingpong(faults=FaultPlan.of(NodeSlow(node=1, factor=4.0)))
    assert slowed > base * 1.2


def test_node_pause_delays_completion():
    base = _timed_pingpong()
    paused = _timed_pingpong(
        faults=FaultPlan.of(NodePause(node=0, t_start=0.0, t_end=base + 5_000.0))
    )
    assert paused >= base + 4_000.0


def test_node_crash_deadlocks_peers():
    world = World(2, platform="ethernet",
                  faults=FaultPlan.of(NodeCrash(node=1, at=0.0)),
                  kernel_params=KernelParams().with_overrides(
                      rto=2_000.0, max_retries=3),
                  seed=0)

    def main(comm):
        if comm.rank == 0:
            yield from comm.recv(source=1, tag=1)
        else:
            yield from comm.recv(source=0, tag=1)

    with pytest.raises(DeadlockError) as ei:
        world.run(main)
    assert 0 in ei.value.stuck_ranks


def test_host_rule_bad_node_id_rejected():
    with pytest.raises(ConfigurationError):
        World(2, platform="ethernet",
              faults=FaultPlan.of(NodeCrash(node=9, at=0.0)))


def test_meiko_still_rejects_cluster_only_options_but_takes_faults():
    with pytest.raises(ConfigurationError):
        World(2, platform="meiko", drop_fn=lambda f: False)
    # faults are fine on the meiko
    World(2, platform="meiko", faults=FaultPlan.loss(0.0))
