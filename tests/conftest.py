"""Repo-wide test fixtures: device parametrizations and world runner.

The device lists are derived from :data:`repro.platforms.DEVICE_MATRIX`
— the single source of truth for the paper's implementation matrix —
so a platform or device added there is automatically covered by every
parametrized test and by the conformance fuzzer.
"""

import pytest

from repro.mpi import World
from repro.platforms import DEVICE_MATRIX, PLATFORM_DEVICES

MEIKO_DEVICES = [
    (platform, device) for platform, device in DEVICE_MATRIX if platform == "meiko"
]
CLUSTER_DEVICES = [
    (platform, device)
    for platform, device in DEVICE_MATRIX
    if platform in ("atm", "ethernet")
]
MODERN_DEVICES = [
    (platform, device) for platform, device in DEVICE_MATRIX if platform == "modern"
]
ALL_DEVICES = MEIKO_DEVICES + CLUSTER_DEVICES + MODERN_DEVICES

assert set(ALL_DEVICES) == set(DEVICE_MATRIX)
assert set(p for p, _ in ALL_DEVICES) == set(PLATFORM_DEVICES)


def run_world(nprocs, main, platform="meiko", device="lowlatency", *args, **world_kw):
    world = World(nprocs, platform=platform, device=device, **world_kw)
    return world.run(main, *args)


@pytest.fixture(params=MEIKO_DEVICES, ids=lambda p: f"{p[0]}-{p[1]}")
def meiko_device(request):
    return request.param


@pytest.fixture(params=CLUSTER_DEVICES, ids=lambda p: f"{p[0]}-{p[1]}")
def cluster_device(request):
    return request.param


@pytest.fixture(params=MODERN_DEVICES, ids=lambda p: f"{p[0]}-{p[1]}")
def modern_device(request):
    return request.param


@pytest.fixture(params=ALL_DEVICES, ids=lambda p: f"{p[0]}-{p[1]}")
def all_devices(request):
    """One (platform, device) cell of the full implementation matrix."""
    return request.param


@pytest.fixture(params=ALL_DEVICES, ids=lambda p: f"{p[0]}-{p[1]}")
def any_device(request):
    # historical alias for all_devices, kept for existing tests
    return request.param
