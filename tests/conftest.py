"""Repo-wide test fixtures: device parametrizations and world runner."""

import pytest

from repro.mpi import World

MEIKO_DEVICES = [("meiko", "lowlatency"), ("meiko", "mpich")]
CLUSTER_DEVICES = [("ethernet", "tcp"), ("atm", "tcp"), ("ethernet", "udp"), ("atm", "udp")]
ALL_DEVICES = MEIKO_DEVICES + CLUSTER_DEVICES


def run_world(nprocs, main, platform="meiko", device="lowlatency", *args, **world_kw):
    world = World(nprocs, platform=platform, device=device, **world_kw)
    return world.run(main, *args)


@pytest.fixture(params=MEIKO_DEVICES, ids=lambda p: f"{p[0]}-{p[1]}")
def meiko_device(request):
    return request.param


@pytest.fixture(params=ALL_DEVICES, ids=lambda p: f"{p[0]}-{p[1]}")
def any_device(request):
    return request.param
