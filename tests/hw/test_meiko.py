"""Tests for the Meiko CS/2 hardware model: network, node primitives, events."""

import pytest

from repro.errors import HardwareError
from repro.hw.meiko import HwEvent, MeikoMachine, MeikoParams
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def machine(sim, n=4, **overrides):
    params = MeikoParams().with_overrides(**overrides) if overrides else MeikoParams()
    return MeikoMachine(sim, n, params=params)


# ---------------------------------------------------------------------------
# HwEvent
# ---------------------------------------------------------------------------


def test_hwevent_set_before_wait_not_lost(sim):
    ev = HwEvent(sim)
    ev.set()

    def proc(sim):
        yield ev.wait()
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 0.0
    assert ev.count == 0


def test_hwevent_wait_blocks_until_set(sim):
    ev = HwEvent(sim)

    def waiter(sim):
        yield ev.wait()
        return sim.now

    def setter(sim):
        yield sim.timeout(9.0)
        ev.set()

    p = sim.process(waiter(sim))
    sim.process(setter(sim))
    sim.run()
    assert p.value == 9.0


def test_hwevent_counts_multiple_sets(sim):
    ev = HwEvent(sim)
    ev.set()
    ev.set()
    assert ev.count == 2
    assert ev.poll()
    assert ev.poll()
    assert not ev.poll()


def test_hwevent_wakes_waiters_fifo(sim):
    ev = HwEvent(sim)
    order = []

    def waiter(sim, tag):
        yield ev.wait()
        order.append(tag)

    for tag in "abc":
        sim.process(waiter(sim, tag))

    def setter(sim):
        for _ in range(3):
            yield sim.timeout(1.0)
            ev.set()

    sim.process(setter(sim))
    sim.run()
    assert order == list("abc")


# ---------------------------------------------------------------------------
# fabric topology / latency
# ---------------------------------------------------------------------------


def test_stages_same_node_zero(sim):
    m = machine(sim, 16)
    assert m.network.stages(3, 3) == 0


def test_stages_within_quad(sim):
    m = machine(sim, 16)
    assert m.network.stages(0, 3) == 1
    assert m.network.stages(4, 7) == 1


def test_stages_across_quads(sim):
    m = machine(sim, 16)
    assert m.network.stages(0, 4) == 2
    assert m.network.stages(0, 15) == 2


def test_stages_64_nodes(sim):
    m = machine(sim, 64)
    assert m.network.stages(0, 63) == 3
    assert m.network.height() == 3


def test_route_latency_monotone_in_distance(sim):
    m = machine(sim, 64)
    near = m.network.route_latency(0, 1)
    mid = m.network.route_latency(0, 5)
    far = m.network.route_latency(0, 63)
    assert near < mid < far


def test_bad_node_rejected(sim):
    m = machine(sim, 4)
    with pytest.raises(HardwareError):
        m.network.stages(0, 4)
    with pytest.raises(HardwareError):
        m.network.route_latency(-1, 0)


# ---------------------------------------------------------------------------
# remote transactions / DMA / events
# ---------------------------------------------------------------------------


def test_txn_delivers_payload_effect(sim):
    m = machine(sim, 2)
    src, dst = m.nodes[0], m.nodes[1]
    region = dst.alloc_region("inbox", 64)
    done = dst.event("done")

    def sender(sim):
        payload = b"hello"

        def deliver():
            region.write(0, payload)
            done.set()

        yield from src.issue_txn(1, len(payload), deliver)

    def receiver(sim):
        yield done.wait()
        return (sim.now, region.read(0, 5))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    t, data = p.value
    assert data == b"hello"
    assert t > 0.0


def test_txn_latency_scales_with_payload(sim):
    def one_way(nbytes):
        s = Simulator()
        m = machine(s, 2)
        done = m.nodes[1].event("d")

        def sender(s):
            yield from m.nodes[0].issue_txn(1, nbytes, done.set)

        def receiver(s):
            yield done.wait()
            return s.now

        s.process(sender(s))
        p = s.process(receiver(s))
        s.run()
        return p.value

    t_small, t_big = one_way(8), one_way(800)
    params = MeikoParams()
    assert t_big - t_small == pytest.approx(792 * params.txn_per_byte)


def test_dma_faster_per_byte_than_txn(sim):
    def one_way(kind, nbytes):
        s = Simulator()
        m = machine(s, 2)
        done = m.nodes[1].event("d")

        def sender(s):
            issue = m.nodes[0].issue_dma if kind == "dma" else m.nodes[0].issue_txn
            yield from issue(1, nbytes, done.set)

        def receiver(s):
            yield done.wait()
            return s.now

        s.process(sender(s))
        p = s.process(receiver(s))
        s.run()
        return p.value

    n = 100_000
    assert one_way("dma", n) < one_way("txn", n)


def test_dma_local_done_fires(sim):
    m = machine(sim, 2)
    local = m.nodes[0].event("local")
    remote = m.nodes[1].event("remote")

    def sender(sim):
        yield from m.nodes[0].issue_dma(1, 1000, remote.set, local_done=local)
        yield local.wait()
        return sim.now

    p = sim.process(sender(sim))
    sim.run()
    assert p.value > 0
    assert remote.total_sets == 1


def test_remote_event_set(sim):
    m = machine(sim, 2)
    ev = m.nodes[1].event("flag")

    def sender(sim):
        yield from m.nodes[0].set_remote_event(1, ev)

    def receiver(sim):
        yield from m.nodes[1].wait_event(ev)
        return sim.now

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert p.value > 0


def test_txns_from_one_sender_arrive_in_order(sim):
    m = machine(sim, 2)
    arrived = []

    def sender(sim):
        for i in range(10):
            yield from m.nodes[0].issue_txn(1, 4, lambda i=i: arrived.append(i))

    sim.process(sender(sim))
    sim.run()
    assert arrived == list(range(10))


def test_elan_serializes_commands(sim):
    """Two big txns from one node must serialize on the Elan."""
    m = machine(sim, 2)
    times = []

    def sender(sim):
        for _ in range(2):
            yield from m.nodes[0].issue_txn(1, 1000, lambda: times.append(sim.now))

    sim.process(sender(sim))
    sim.run()
    gap = times[1] - times[0]
    assert gap >= 1000 * MeikoParams().txn_per_byte


def test_broadcast_reaches_all_nodes(sim):
    from repro.hw.meiko.network import Packet, PKT_TXN

    m = machine(sim, 8)
    got = []

    def make(dst):
        if dst == 0:
            return None  # sender skips itself
        return Packet(PKT_TXN, 0, dst, 32, lambda d=dst: got.append((d, sim.now)))

    m.network.broadcast(0, make)
    sim.run()
    assert sorted(d for d, _ in got) == list(range(1, 8))
    # all copies arrive at the same fabric time (deliveries then serialize
    # per receiving Elan, but these are distinct nodes)
    times = {t for _, t in got}
    assert len(times) == 1


def test_region_bounds_checked(sim):
    m = machine(sim, 1)
    region = m.nodes[0].alloc_region("r", 16)
    with pytest.raises(HardwareError):
        region.write(10, b"0123456789")
    with pytest.raises(HardwareError):
        region.read(-1, 4)
    region.write(0, b"abcd")
    assert region.read(0, 4) == b"abcd"


def test_duplicate_region_rejected(sim):
    m = machine(sim, 1)
    m.nodes[0].alloc_region("r", 16)
    with pytest.raises(HardwareError):
        m.nodes[0].alloc_region("r", 16)


def test_machine_requires_positive_nodes(sim):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        MeikoMachine(sim, 0)


def test_dma_engine_serializes_streams(sim):
    """Two big DMAs from one node share the DMA engine back to back."""
    m = machine(sim, 2)
    done_times = []

    def sender(sim):
        for _ in range(2):
            yield from m.nodes[0].issue_dma(1, 100_000, lambda: done_times.append(sim.now))

    sim.process(sender(sim))
    sim.run()
    stream = 100_000 * MeikoParams().dma_per_byte
    assert done_times[1] - done_times[0] >= stream * 0.95


def test_issue_bcast_delivers_to_selected_nodes(sim):
    m = machine(sim, 8)
    got = []

    def make_deliver(dst):
        if dst in (0, 3):
            return None  # sender + one excluded node
        return lambda d=dst: got.append(d)

    def sender(sim):
        yield from m.nodes[0].issue_bcast(512, make_deliver)

    sim.process(sender(sim))
    sim.run()
    assert sorted(got) == [1, 2, 4, 5, 6, 7]


def test_bcast_stream_charges_dma_once(sim):
    """Hardware broadcast streams the payload once, not per destination."""
    m = machine(sim, 8)
    t_done = []

    def sender(sim):
        yield from m.nodes[0].issue_bcast(39_000, lambda dst: (lambda: t_done.append(sim.now)))

    sim.process(sender(sim))
    sim.run()
    # all eight deliveries at the same instant, ~1 stream time after start
    assert len(set(round(t, 6) for t in t_done)) == 1
    stream = 39_000 * MeikoParams().dma_per_byte
    assert t_done[0] < 2.0 * stream  # not 8 streams' worth


def test_elan_call_command_runs_plain_and_generator(sim):
    from repro.hw.meiko.node import ElanCallCommand

    m = machine(sim, 1)
    node = m.nodes[0]
    log = []

    def plain():
        log.append(("plain", sim.now))

    def gen():
        yield from node.elan.execute(5.0)
        log.append(("gen", sim.now))

    node.issue(ElanCallCommand(plain))
    node.issue(ElanCallCommand(lambda: gen()))
    sim.run()
    assert log[0][0] == "plain"
    assert log[1][0] == "gen"
    assert log[1][1] > log[0][1]


def test_sparc_and_elan_are_independent_resources(sim):
    """SPARC compute does not block Elan command processing."""
    m = machine(sim, 2)
    node = m.nodes[0]
    arrival = []

    def app(sim):
        # hog the SPARC with one huge slice
        yield from node.cpu.execute(10_000.0)

    def sender(sim):
        yield sim.timeout(1.0)
        node.issue(
            __import__("repro.hw.meiko.node", fromlist=["TxnCommand"]).TxnCommand(
                1, 8, lambda: arrival.append(sim.now)
            )
        )

    sim.process(app(sim))
    sim.process(sender(sim))
    sim.run()
    assert arrival and arrival[0] < 100.0  # delivered while the SPARC was busy
