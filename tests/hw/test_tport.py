"""Tests for the tport widget (tagged message passing, Elan matching)."""

import pytest

from repro.hw.meiko import MeikoMachine, MeikoParams
from repro.hw.meiko.tport import ANY_SENDER
from repro.sim import Simulator


def run_pair(sender_fn, receiver_fn, nnodes=2, **overrides):
    """Run two generator mains on a fresh machine; return their values."""
    sim = Simulator()
    params = MeikoParams().with_overrides(**overrides) if overrides else MeikoParams()
    m = MeikoMachine(sim, nnodes, params=params)
    tports = m.tports()
    ps = sim.process(sender_fn(sim, tports))
    pr = sim.process(receiver_fn(sim, tports))
    sim.run()
    assert ps.ok and pr.ok
    return ps.value, pr.value, sim


def test_send_recv_small():
    def sender(sim, tp):
        yield from tp[0].tsend(1, tag=7, data=b"hi")

    def receiver(sim, tp):
        data, src, tag = yield from tp[1].trecv(tag=7)
        return (data, src, tag)

    _, rv, _ = run_pair(sender, receiver)
    assert rv == (b"hi", 0, 7)


def test_send_recv_large_uses_rendezvous():
    payload = bytes(range(256)) * 64  # 16 KB > threshold

    def sender(sim, tp):
        yield from tp[0].tsend(1, tag=1, data=payload)

    def receiver(sim, tp):
        data, src, tag = yield from tp[1].trecv(tag=1)
        return data

    _, rv, sim = run_pair(sender, receiver)
    assert rv == payload


def test_unexpected_message_buffered_then_matched():
    def sender(sim, tp):
        yield from tp[0].tsend(1, tag=3, data=b"early")

    def receiver(sim, tp):
        yield sim.timeout(500.0)  # let the message arrive unexpected
        data, src, tag = yield from tp[1].trecv(tag=3)
        return data

    _, rv, _ = run_pair(sender, receiver)
    assert rv == b"early"


def test_tag_mismatch_does_not_match():
    def sender(sim, tp):
        yield from tp[0].tsend(1, tag=3, data=b"three")
        yield from tp[0].tsend(1, tag=4, data=b"four")

    def receiver(sim, tp):
        data4, _, _ = yield from tp[1].trecv(tag=4)
        data3, _, _ = yield from tp[1].trecv(tag=3)
        return (data3, data4)

    _, rv, _ = run_pair(sender, receiver)
    assert rv == (b"three", b"four")


def test_sender_filter():
    def sender0(sim, tp):
        yield from tp[0].tsend(2, tag=1, data=b"from0")

    def others(sim, tp):
        yield from tp[1].tsend(2, tag=1, data=b"from1")
        # receiver asks specifically for node 0's message first
        d0, s0, _ = yield from tp[2].trecv(tag=1, sender=0)
        d1, s1, _ = yield from tp[2].trecv(tag=1, sender=ANY_SENDER)
        return (d0, s0, d1, s1)

    sim = Simulator()
    m = MeikoMachine(sim, 3)
    tp = m.tports()
    sim.process(sender0(sim, tp))
    p = sim.process(others(sim, tp))
    sim.run()
    d0, s0, d1, s1 = p.value
    assert (d0, s0) == (b"from0", 0)
    assert (d1, s1) == (b"from1", 1)


def test_tag_mask_wildcard():
    """A mask of 0 matches any tag (used for MPI ANY_TAG)."""

    def sender(sim, tp):
        yield from tp[0].tsend(1, tag=0xDEAD, data=b"x")

    def receiver(sim, tp):
        data, _, tag = yield from tp[1].trecv(tag=0, mask=0)
        return (data, tag)

    _, rv, _ = run_pair(sender, receiver)
    assert rv == (b"x", 0xDEAD)


def test_nonovertaking_same_tag():
    """Two same-tag messages from one sender arrive in send order."""

    def sender(sim, tp):
        for i in range(5):
            yield from tp[0].tsend(1, tag=9, data=bytes([i]))

    def receiver(sim, tp):
        out = []
        for _ in range(5):
            data, _, _ = yield from tp[1].trecv(tag=9)
            out.append(data[0])
        return out

    _, rv, _ = run_pair(sender, receiver)
    assert rv == [0, 1, 2, 3, 4]


def test_isend_overlaps():
    """Nonblocking sends let the SPARC continue immediately."""

    def sender(sim, tp):
        t0 = sim.now
        h = tp[0].isend(1, tag=1, data=b"x" * 100)
        t_after_isend = sim.now - t0
        yield from tp[0].twait(h)
        return t_after_isend

    def receiver(sim, tp):
        data, _, _ = yield from tp[1].trecv(tag=1)
        return data

    sv, rv, _ = run_pair(sender, receiver)
    assert sv == 0.0  # isend is issue-and-return
    assert rv == b"x" * 100


def test_pingpong_roundtrip_latency_near_52us():
    """Paper, Figure 2: tport 1-byte round trip = 52 us."""

    def ping(sim, tp):
        t0 = sim.now
        yield from tp[0].tsend(1, tag=1, data=b"a")
        data, _, _ = yield from tp[0].trecv(tag=2)
        return sim.now - t0

    def pong(sim, tp):
        data, _, _ = yield from tp[1].trecv(tag=1)
        yield from tp[1].tsend(0, tag=2, data=data)

    rtt, _, _ = run_pair(ping, pong)
    assert 40.0 <= rtt <= 65.0, f"tport RTT {rtt} not near the paper's 52us"


def test_large_bandwidth_near_dma_peak():
    """Paper, Figure 3: large transfers approach the 39 MB/s DMA peak."""
    nbytes = 1_000_000

    def sender(sim, tp):
        yield from tp[0].tsend(1, tag=1, data=bytes(nbytes))

    def receiver(sim, tp):
        t0 = sim.now
        data, _, _ = yield from tp[1].trecv(tag=1)
        return nbytes / (sim.now - t0)  # bytes per microsecond = MB/s

    _, bw, _ = run_pair(sender, receiver)
    assert 35.0 <= bw <= 39.5, f"tport bandwidth {bw} MB/s not near DMA peak"


def test_many_pairs_simultaneously():
    sim = Simulator()
    m = MeikoMachine(sim, 8)
    tp = m.tports()
    results = []

    def sender(sim, i):
        yield from tp[i].tsend(i + 4, tag=i, data=bytes([i]) * 50)

    def receiver(sim, i):
        data, src, _ = yield from tp[i + 4].trecv(tag=i)
        results.append((i, src, data[0]))

    for i in range(4):
        sim.process(sender(sim, i))
        sim.process(receiver(sim, i))
    sim.run()
    assert sorted(results) == [(i, i, i) for i in range(4)]


def test_bad_destination_rejected():
    from repro.errors import HardwareError

    sim = Simulator()
    m = MeikoMachine(sim, 2)
    tp = m.tports()
    with pytest.raises(HardwareError):
        tp[0].isend(5, tag=0, data=b"")


def test_tport_random_tag_schedule_property():
    """Hypothesis: any schedule of tagged sends matched by tag-ordered
    receives delivers exactly the right payloads (Elan-side matching
    preserves per-tag FIFO)."""
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        tags=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=10)
    )
    def run(tags):
        sim = Simulator()
        m = MeikoMachine(sim, 2)
        tp = m.tports()

        def sender(sim):
            for i, tag in enumerate(tags):
                yield from tp[0].tsend(1, tag=tag, data=bytes([tag, i]))

        def receiver(sim):
            # receive per tag, in per-tag send order
            out = {}
            for tag in sorted(set(tags)):
                expect = [i for i, t in enumerate(tags) if t == tag]
                got = []
                for _ in expect:
                    data, _, _ = yield from tp[1].trecv(tag=tag)
                    got.append(data[1])
                out[tag] = (got, expect)
            return out

        sim.process(sender(sim))
        p = sim.process(receiver(sim))
        sim.run()
        for tag, (got, expect) in p.value.items():
            assert got == expect, (tag, got, expect)

    run()


def test_tport_cancel_posted_descriptor():
    sim = Simulator()
    m = MeikoMachine(sim, 2)
    tp = m.tports()

    def main(sim):
        h = tp[1].irecv(tag=42)
        ok = yield from tp[1].tcancel(h)
        assert ok
        # a second cancel finds nothing
        ok2 = yield from tp[1].tcancel(h)
        assert not ok2
        return True

    p = sim.process(main(sim))
    sim.run()
    assert p.value is True


def test_tport_elan_busy_time_accumulates():
    sim = Simulator()
    m = MeikoMachine(sim, 2)
    tp = m.tports()

    def sender(sim):
        yield from tp[0].tsend(1, tag=1, data=bytes(100))

    def receiver(sim):
        yield from tp[1].trecv(tag=1)

    sim.process(sender(sim))
    sim.process(receiver(sim))
    sim.run()
    assert m.nodes[0].elan.busy_time > 0
    assert m.nodes[1].elan.busy_time > 0
