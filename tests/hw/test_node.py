"""Tests for the Host / Processor models."""

import pytest

from repro.hw import Host, Processor
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_processor_charges_time(sim):
    host = Host(sim, 0)

    def proc(sim):
        yield from host.cpu.execute(12.5)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 12.5


def test_processor_serializes(sim):
    cpu = Processor(sim, "cpu")
    log = []

    def user(sim, tag):
        yield from cpu.execute(10.0)
        log.append((tag, sim.now))

    sim.process(user(sim, "a"))
    sim.process(user(sim, "b"))
    sim.run()
    assert log == [("a", 10.0), ("b", 20.0)]


def test_processor_tracks_busy_time(sim):
    cpu = Processor(sim, "cpu")

    def proc(sim):
        yield from cpu.execute(3.0)
        yield from cpu.execute(4.0)

    sim.process(proc(sim))
    sim.run()
    assert cpu.busy_time == 7.0


def test_processor_rejects_negative_cost(sim):
    cpu = Processor(sim, "cpu")
    with pytest.raises(ValueError):
        list(cpu.execute(-1.0))


def test_compute_slices_allow_interleaving(sim):
    """A long computation must not monopolize the CPU for its whole span."""
    host = Host(sim, 0)
    log = []

    def worker(sim):
        yield from host.compute(200.0, quantum=50.0)
        log.append(("worker", sim.now))

    def kernel(sim):
        yield sim.timeout(10.0)  # arrives mid-computation
        yield from host.cpu.execute(5.0)
        log.append(("kernel", sim.now))

    sim.process(worker(sim))
    sim.process(kernel(sim))
    sim.run()
    # kernel work runs after the first 50us quantum, not after 200us
    assert log[0][0] == "kernel"
    assert log[0][1] == 55.0
    assert log[1] == ("worker", 205.0)


def test_compute_total_time_exact(sim):
    host = Host(sim, 0)

    def worker(sim):
        yield from host.compute(123.0, quantum=50.0)
        return sim.now

    p = sim.process(worker(sim))
    sim.run()
    assert p.value == 123.0


def test_compute_rejects_bad_args(sim):
    host = Host(sim, 0)
    with pytest.raises(ValueError):
        list(host.compute(-1.0))
    with pytest.raises(ValueError):
        list(host.compute(10.0, quantum=0.0))


def test_host_rngs_are_distinct_and_deterministic():
    sim = Simulator()
    h0 = Host(sim, 0, seed=1)
    h1 = Host(sim, 1, seed=1)
    h0b = Host(Simulator(), 0, seed=1)
    a, b, a2 = h0.rng.random(), h1.rng.random(), h0b.rng.random()
    assert a != b  # different hosts, different streams
    assert a == a2  # same host+seed, same stream


def test_wtime_is_sim_clock(sim):
    host = Host(sim, 0)

    def proc(sim):
        yield sim.timeout(42.0)
        return host.wtime()

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 42.0
