"""Timeline (Gantt) tests."""

import pytest

from repro.mpi.profiling import profile
from repro.mpi.timeline import Timeline
from tests.conftest import run_world


def test_record_and_analyze():
    tl = Timeline()
    tl.record(0, "send", 0.0, 10.0)
    tl.record(0, "recv", 20.0, 50.0)
    tl.record(1, "recv", 5.0, 15.0)
    assert tl.ranks() == [0, 1]
    assert tl.mpi_time(0) == 40.0
    assert tl.busiest_call(0) == "recv"
    assert tl.busiest_call(2) is None


def test_record_rejects_inverted_span():
    tl = Timeline()
    with pytest.raises(ValueError):
        tl.record(0, "send", 10.0, 5.0)


def test_render_empty():
    assert "no spans" in Timeline().render()


def test_render_shape():
    tl = Timeline()
    tl.record(0, "send", 0.0, 50.0)
    tl.record(1, "recv", 50.0, 100.0)
    out = tl.render(width=20)
    lines = out.splitlines()
    assert lines[0].startswith("rank  0 |")
    assert lines[1].startswith("rank  1 |")
    # rank 0 busy in the first half, rank 1 in the second
    row0 = lines[0].split("|")[1]
    row1 = lines[1].split("|")[1]
    assert row0[0] == "#" and row0[-1] == "."
    assert row1[0] == "." and row1[-1] == "#"
    assert "% in MPI" in lines[0]


def test_collects_from_profiled_world():
    tl = Timeline()

    def main(comm):
        p = profile(comm, timeline=tl)
        other = 1 - comm.rank
        yield from p.sendrecv(b"x" * 64, dest=other, source=other)
        yield from p.barrier()
        return True

    run_world(2, main)
    assert set(tl.ranks()) == {0, 1}
    calls = {s.call for s in tl.spans}
    assert "sendrecv" in calls and "barrier" in calls
    rendered = tl.render(width=30)
    assert "rank  0" in rendered and "rank  1" in rendered


def test_timeline_shows_imbalance():
    """A rank that computes longer shows less MPI occupancy."""
    tl = Timeline()

    def main(comm):
        p = profile(comm, timeline=tl)
        # rank 1 computes 10x longer before the barrier
        yield from comm.endpoint.host.compute(1000.0 * (1 + 9 * comm.rank))
        yield from p.barrier()
        return True

    run_world(2, main)
    # rank 0 waits in the barrier for rank 1 -> more MPI time
    assert tl.mpi_time(0) > tl.mpi_time(1) * 3
