"""Mid-collective crash semantics across the device matrix.

The interplay pinned here: ``DeadlockError`` watchdog × ``ERRORS_RETURN``
× ``NodeCrash``.  With fault tolerance enabled, every survivor of a rank
that dies mid-collective must get a :class:`CommError`/:class:`RankFailed`
naming the dead rank — not a hang, and not a watchdog abort — on every
device cell, whichever error handler is installed.  Two library
properties make that hold:

* internal collective traffic is failed on *every* survivor when any
  participant dies (even legs binding two survivors — otherwise ranks
  downstream in the tree wait forever on a rank that already errored
  out, and the watchdog is what the user sees);
* collectives raise device failures regardless of ``ERRORS_RETURN``
  (they return data, not codes — there is no channel for a code).
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, NodeCrash
from repro.mpi import World
from repro.mpi.constants import ERRORS_ARE_FATAL, ERRORS_RETURN
from repro.mpi.exceptions import CommError, RankFailed

VICTIM = 2
CRASH_AT = 900.0


def crashing_collective(handler, collective):
    def main(comm):
        comm.set_errhandler(handler)
        try:
            for _ in range(400):
                if collective == "allreduce":
                    yield from comm.allreduce(np.ones(4))
                else:
                    yield from comm.barrier()
        except CommError as exc:
            dead = tuple(getattr(exc, "failed", ()) or ())
            if not dead and exc.peer is not None:
                dead = (comm.world_rank(exc.peer),)
            return type(exc).__name__, dead
        return "completed", ()

    return main


@pytest.mark.parametrize("handler", [ERRORS_ARE_FATAL, ERRORS_RETURN])
def test_mid_collective_crash_names_dead_rank_everywhere(all_devices, handler):
    platform, device = all_devices
    world = World(
        4, platform=platform, device=device, seed=3,
        faults=FaultPlan.of(NodeCrash(node=VICTIM, at=CRASH_AT)), ft=True,
    )
    # must complete — a DeadlockError here is the bug this test pins
    res = world.run(crashing_collective(handler, "allreduce"))
    assert res[VICTIM] is None
    for rank, outcome in enumerate(res):
        if rank == VICTIM:
            continue
        name, dead = outcome
        assert name in ("RankFailed", "CommError"), (rank, outcome)
        assert VICTIM in dead, (rank, outcome)


def test_mid_barrier_crash_names_dead_rank(all_devices):
    platform, device = all_devices
    world = World(
        4, platform=platform, device=device, seed=5,
        faults=FaultPlan.of(NodeCrash(node=VICTIM, at=CRASH_AT)), ft=True,
    )
    res = world.run(crashing_collective(ERRORS_ARE_FATAL, "barrier"))
    assert res[VICTIM] is None
    for rank, outcome in enumerate(res):
        if rank == VICTIM:
            continue
        name, dead = outcome
        assert name in ("RankFailed", "CommError")
        assert VICTIM in dead


def test_collective_entry_with_known_dead_member_fails_fast():
    """A collective started after detection raises immediately — no rank
    starts a tree exchange its peers will never finish."""

    def main(comm):
        if comm.rank == VICTIM:
            while True:
                yield from comm.endpoint.host.compute(100.0)
        while comm.wtime() < 200.0:  # crash at 50, meiko detect at 110
            yield from comm.endpoint.host.compute(50.0)
        with pytest.raises(RankFailed) as ei:
            yield from comm.allreduce(np.ones(2))
        assert VICTIM in ei.value.failed
        return "failed-fast"

    world = World(4, platform="meiko", seed=0,
                  faults=FaultPlan.of(NodeCrash(node=VICTIM, at=50.0)), ft=True)
    res = world.run(main)
    assert [r for i, r in enumerate(res) if i != VICTIM] == ["failed-fast"] * 3


def test_errhandler_restored_after_collective():
    """Collectives temporarily force fatal semantics internally; the
    installed handler must be back in place for the point-to-point calls
    that follow — on the happy path and after a failure."""

    def happy(comm):
        comm.set_errhandler(ERRORS_RETURN)
        yield from comm.allreduce(np.ones(2))
        return comm.get_errhandler()

    res = World(2, platform="meiko", seed=0).run(happy)
    assert res == [ERRORS_RETURN, ERRORS_RETURN]

    def unhappy(comm):
        comm.set_errhandler(ERRORS_RETURN)
        if comm.rank == VICTIM:
            yield from comm.endpoint.host.compute(100_000.0)
            return None
        with pytest.raises(CommError):
            for _ in range(400):
                yield from comm.allreduce(np.ones(2))
        return comm.get_errhandler()

    world = World(4, platform="meiko", seed=1,
                  faults=FaultPlan.of(NodeCrash(node=VICTIM, at=CRASH_AT)),
                  ft=True)
    res = world.run(unhappy)
    assert [r for i, r in enumerate(res) if i != VICTIM] == \
        [ERRORS_RETURN] * 3
