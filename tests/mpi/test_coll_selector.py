"""Properties of the collective-algorithm registry and auto-selector.

Three families of guarantees (see ``docs/COLLECTIVES.md``):

* **selection is pure** — :func:`repro.mpi.coll.registry.select` is a
  function of ``(collective, nbytes, nranks, table)`` only, so every
  rank of a communicator picks the same algorithm without negotiation;
* **styles never change results** — every registered algorithm of every
  collective produces the identical result on power-of-two,
  non-power-of-two, and single-rank communicators;
* **resolution precedence** — explicit ``style=`` beats the
  ``REPRO_COLL_<OP>`` environment override beats the platform tuning
  table beats the device's legacy default.
"""

import numpy as np
import pytest

from repro.mpi import World
from repro.mpi.coll import registry
from repro.platforms import COLL_TUNING
from tests.mpi.conftest import run_world

#: collectives with a forced-style knob and at least two algorithms
STYLED = ["bcast", "allreduce", "barrier", "gather", "scatter", "allgather"]


# ---------------------------------------------------------------- selection
def test_select_is_pure_and_names_registered_algorithms():
    """Same inputs, same answer — over every shipped tuning table, and
    every answer is a registered algorithm of that collective."""
    sizes = [0, 1, 1024, 16384, 65536, 1 << 20]
    ranks = [1, 2, 8, 64, 128, 512, 10_000]
    for cell, table in COLL_TUNING.items():
        for coll in list(table) + ["scan"]:
            for nbytes in sizes:
                for nranks in ranks:
                    a = registry.select(coll, nbytes, nranks, table)
                    b = registry.select(coll, nbytes, nranks, table)
                    assert a == b, (cell, coll, nbytes, nranks)
                    if a is not None:
                        assert a in registry.algorithms(coll), (cell, coll, a)


def test_select_precedence_large_beats_wide_beats_small():
    table = {"bcast": {
        "small": "linear", "wide": "binomial", "wide_ranks": 16,
        "large": "scatter_allgather", "large_bytes": 4096,
        "large_max_ranks": 64,
    }}
    # below both crossovers
    assert registry.select("bcast", 8, 4, table) == "linear"
    # wide crossover
    assert registry.select("bcast", 8, 16, table) == "binomial"
    # large beats wide while under the rank cap
    assert registry.select("bcast", 4096, 32, table) == "scatter_allgather"
    # the rank cap pushes a large payload back to the wide choice
    assert registry.select("bcast", 4096, 65, table) == "binomial"
    # no table / no entry -> None (caller falls back to the device default)
    assert registry.select("bcast", 8, 4, None) is None
    assert registry.select("scan", 8, 4, table) is None


def test_documented_crossovers_per_platform():
    """The crossover shape docs/COLLECTIVES.md documents, pinned."""
    ll = COLL_TUNING["meiko-lowlatency"]
    # the hardware broadcast never crosses over on the low-latency device
    for nbytes, nranks in [(8, 2), (1 << 20, 8), (64, 10_000)]:
        assert registry.select("bcast", nbytes, nranks, ll) == "hardware"
    # allreduce: ring takes over at 64 KiB but only up to 128 ranks
    assert registry.select("allreduce", 16384, 8, ll) == "reduce_bcast"
    assert registry.select("allreduce", 65536, 128, ll) == "ring"
    assert registry.select("allreduce", 65536, 256, ll) == "reduce_bcast"
    # barrier: dissemination small, tree from 512 ranks
    assert registry.select("barrier", 0, 8, ll) == "dissemination"
    assert registry.select("barrier", 0, 512, ll) == "tree"
    # mpich: binomial small, scatter-allgather from 64 KiB
    mp = COLL_TUNING["meiko-mpich"]
    assert registry.select("bcast", 16384, 16, mp) == "binomial"
    assert registry.select("bcast", 65536, 16, mp) == "scatter_allgather"
    for cell in ("atm-tcp", "atm-udp", "ethernet-tcp", "ethernet-udp"):
        table = COLL_TUNING[cell]
        assert registry.select("bcast", 64, 4, table) == "linear"
        assert registry.select("bcast", 64, 16, table) == "binomial"
        assert registry.select("allreduce", 65536, 32, table) == "ring"
        assert registry.select("allreduce", 65536, 128, table) == "reduce_bcast"
    # scatter-allgather bcast pays off on switched ATM, never on the
    # shared-medium Ethernet (one wire serializes every byte anyway)
    for cell in ("atm-tcp", "atm-udp"):
        assert registry.select("bcast", 65536, 32,
                               COLL_TUNING[cell]) == "scatter_allgather"
    for cell in ("ethernet-tcp", "ethernet-udp"):
        assert registry.select("bcast", 65536, 32,
                               COLL_TUNING[cell]) == "binomial"


# ------------------------------------------------------- style equivalence
def _equivalence_main(comm):
    size = comm.size
    # bcast: every style delivers the root's buffer, nonzero root too
    expect = np.arange(17, dtype=np.int64)
    for style in [None] + registry.algorithms("bcast"):
        for root in (0, size - 1):
            buf = expect.copy() if comm.rank == root \
                else np.zeros(17, dtype=np.int64)
            yield from comm.bcast(buf, root=root, style=style)
            assert np.array_equal(buf, expect), (style, root)
    # allreduce: all styles bit-identical (exact int arithmetic)
    send = np.arange(size + 3, dtype=np.int64) + comm.rank
    base = yield from comm.allreduce(send)
    for style in registry.algorithms("allreduce"):
        res = yield from comm.allreduce(send, style=style)
        assert np.array_equal(res, base), style
    # reduce
    for style in [None] + registry.algorithms("reduce"):
        r = yield from comm.reduce(
            np.full(4, comm.rank + 1, dtype=np.int64), root=0, style=style
        )
        if comm.rank == 0:
            assert int(r[0]) == size * (size + 1) // 2, style
    # barrier: completing at all is the property
    for style in [None] + registry.algorithms("barrier"):
        yield from comm.barrier(style=style)
    # gather / scatter / allgather on objects, nonzero roots included
    want = [b"r%d" % r for r in range(size)]
    for style in [None] + registry.algorithms("gather"):
        for root in (0, size - 1):
            out = yield from comm.gather(b"r%d" % comm.rank, root=root,
                                         style=style)
            if comm.rank == root:
                assert out == want, (style, root)
            else:
                assert out is None
    for style in [None] + registry.algorithms("scatter"):
        for root in (0, size - 1):
            chunks = want if comm.rank == root else None
            mine = yield from comm.scatter(chunks, root=root, style=style)
            assert mine == b"r%d" % comm.rank, (style, root)
    for style in [None] + registry.algorithms("allgather"):
        out = yield from comm.allgather(b"r%d" % comm.rank, style=style)
        assert out == want, style
    return True


@pytest.mark.parametrize("nprocs", [1, 3, 5, 8])
@pytest.mark.parametrize(
    "platform, device", [("meiko", "lowlatency"), ("ethernet", "tcp")]
)
def test_every_style_matches_the_default(platform, device, nprocs):
    """All registered algorithms agree on power-of-two, odd, and
    single-rank communicators, on a Meiko and a cluster fabric."""
    assert all(run_world(nprocs, _equivalence_main, platform, device))


def test_registry_has_multiple_algorithms_per_collective():
    for coll in STYLED:
        assert len(registry.algorithms(coll)) >= 2, coll
    assert registry.algorithms("bcast") == [
        "linear", "binomial", "hardware", "scatter_allgather"
    ]


def test_unknown_style_raises_naming_the_options():
    def main(comm):
        yield from comm.barrier(style="bogus")

    with pytest.raises(ValueError, match="unknown barrier style 'bogus'"):
        World(2, platform="meiko", device="lowlatency").run(main)


# ------------------------------------------------------------- resolution
class _StubEndpoint:
    coll_tuning = {"bcast": {"small": "linear"}}


class _StubComm:
    size = 8
    endpoint = _StubEndpoint()


def test_resolve_precedence(monkeypatch):
    comm = _StubComm()
    monkeypatch.delenv("REPRO_COLL_BCAST", raising=False)
    # table only
    assert registry.resolve(comm, "bcast", None, 64) == "linear"
    # env beats the table
    monkeypatch.setenv("REPRO_COLL_BCAST", "binomial")
    assert registry.resolve(comm, "bcast", None, 64) == "binomial"
    # explicit style beats the env
    assert registry.resolve(comm, "bcast", "scatter_allgather", 64) \
        == "scatter_allgather"
    # no table, no env, no style -> None (device legacy default)
    monkeypatch.delenv("REPRO_COLL_BCAST")
    comm.endpoint.coll_tuning = None
    assert registry.resolve(comm, "bcast", None, 64) is None
    comm.endpoint.coll_tuning = _StubEndpoint.coll_tuning


def test_env_override_matches_forced_style(monkeypatch):
    """REPRO_COLL_ALLREDUCE=recursive_doubling produces the same result
    as the explicit style argument."""

    def forced(comm):
        res = yield from comm.allreduce(
            np.arange(6, dtype=np.int64) * (comm.rank + 1),
            style="recursive_doubling",
        )
        return res.tolist()

    def via_env(comm):
        res = yield from comm.allreduce(
            np.arange(6, dtype=np.int64) * (comm.rank + 1)
        )
        return res.tolist()

    want = run_world(5, forced, "meiko", "lowlatency")
    monkeypatch.setenv("REPRO_COLL_ALLREDUCE", "recursive_doubling")
    assert run_world(5, via_env, "meiko", "lowlatency") == want
