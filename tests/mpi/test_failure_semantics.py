"""MPI failure semantics: bounded retransmission, error handlers,
watchdog diagnostics, and World failure reporting."""

import pytest

from repro.errors import (
    ConnectionClosed,
    DeadlockError,
    NetworkError,
    RetransmitExhausted,
)
from repro.faults import FaultPlan, LinkDown, PacketLoss
from repro.hw.cluster import ClusterMachine
from repro.mpi import World
from repro.mpi.constants import ERR_NETWORK, ERRORS_ARE_FATAL, ERRORS_RETURN, SUCCESS
from repro.mpi.exceptions import CommError, MPIError
from repro.net.kernel import KernelParams
from repro.net.tcp import TcpLayer
from repro.sim import Simulator

#: fail fast so exhausted-retry tests stay cheap
FAST_FAIL = KernelParams().with_overrides(rto=500.0, rto_max=8_000.0, max_retries=3)

#: reverse path dead: data flows 0 -> 1, acks never come back
ACK_BLACKHOLE = FaultPlan.of(LinkDown(src=1, dst=0, t_start=0.0))


# ---------------------------------------------------------------------------
# bounded retransmission at the transport layer
# ---------------------------------------------------------------------------


def _dead_link_machine(network, transport):
    sim = Simulator()
    machine = ClusterMachine(
        sim, 2, network=network, kernel_params=FAST_FAIL,
        faults=FaultPlan.of(LinkDown(t_start=0.0)),
    )
    if transport == "tcp":
        a, b = TcpLayer.connect_pair(machine.kernels[0], machine.kernels[1],
                                     5000, 5000)
    else:
        from repro.net.rudp import RudpConnection

        s0 = machine.kernels[0].udp.bind(7000)
        machine.kernels[1].udp.bind(7000)
        a = RudpConnection(machine.kernels[0], s0, 1, 7000)
        b = None
    return sim, a, b


@pytest.mark.parametrize("transport", ["tcp", "udp"])
def test_bounded_retransmission_gives_up(transport):
    """A dead link exhausts max_retries and raises RetransmitExhausted
    instead of retrying forever."""
    sim, a, _b = _dead_link_machine("ethernet", transport)

    def client(sim):
        yield from a.send(b"x" * 100)
        yield from a.recv_exact(1)  # blocks; woken by the failure

    proc = sim.process(client(sim))
    with pytest.raises(RetransmitExhausted) as ei:
        sim.run()
        proc.value  # noqa: B018 -- raise deferred failure if sim.run absorbed it
    assert "retransmissions" in str(ei.value)
    assert isinstance(a.error, RetransmitExhausted)
    # backoff is exponential but capped: the whole thing ends quickly
    assert sim.now < 1e6


def test_retransmission_backoff_is_bounded_and_seeded():
    """Same seed => identical give-up time (the jitter is deterministic)."""

    def give_up_time():
        sim, a, _ = _dead_link_machine("ethernet", "tcp")

        def client(sim):
            yield from a.send(b"x" * 100)
            yield from a.recv_exact(1)

        sim.process(client(sim))
        with pytest.raises(RetransmitExhausted):
            sim.run()
        return sim.now

    assert give_up_time() == give_up_time()


def test_tcp_reset_notifies_peer():
    """When one side gives up it transmits RST; the peer's next receive
    reports the reset instead of hanging."""
    sim = Simulator()
    machine = ClusterMachine(
        sim, 2, network="ethernet", kernel_params=FAST_FAIL,
        faults=ACK_BLACKHOLE,
    )
    a, b = TcpLayer.connect_pair(machine.kernels[0], machine.kernels[1],
                                 5000, 5000)
    outcomes = {}

    def sender(sim):
        try:
            yield from a.send(b"x" * 100)
            yield from a.recv_exact(1)
        except NetworkError as e:
            outcomes["a"] = e

    def receiver(sim):
        try:
            yield from b.recv_exact(200)  # more than was sent: must block
        except NetworkError as e:
            outcomes["b"] = e

    sim.process(sender(sim))
    sim.process(receiver(sim))
    sim.run()
    assert isinstance(outcomes["a"], RetransmitExhausted)
    assert isinstance(outcomes["b"], ConnectionClosed)
    assert "reset" in str(outcomes["b"])


# ---------------------------------------------------------------------------
# MPI error handlers
# ---------------------------------------------------------------------------


def test_errors_are_fatal_raises_comm_error_with_context():
    def main(comm):
        if comm.rank == 0:
            yield from comm.ssend(b"hello", dest=1, tag=7)
        else:
            yield from comm.recv(source=0, tag=7)
            yield from comm.recv(source=0, tag=7)

    world = World(2, platform="ethernet", faults=ACK_BLACKHOLE,
                  kernel_params=FAST_FAIL, seed=11)
    with pytest.raises(CommError) as ei:
        world.run(main)
    e = ei.value
    assert e.rank == 0 and e.peer == 1 and e.tag == 7
    assert e.errcode == ERR_NETWORK
    assert isinstance(e.__cause__, NetworkError)
    # World attribution: which rank, when
    assert e.mpi_rank == 0
    assert e.sim_time_us > 0


def test_errors_return_surfaces_codes_without_killing_world():
    """Rank 0's ssend returns an error code, rank 1's second recv
    returns (None, status) with the code — and the job still completes
    normally, returning values from every rank."""

    def main(comm):
        comm.set_errhandler(ERRORS_RETURN)
        assert comm.get_errhandler() == ERRORS_RETURN
        if comm.rank == 0:
            code = yield from comm.ssend(b"hello", dest=1, tag=7)
            return code
        first = yield from comm.recv(source=0, tag=7)
        second = yield from comm.recv(source=0, tag=7)
        return first, second

    world = World(2, platform="ethernet", faults=ACK_BLACKHOLE,
                  kernel_params=FAST_FAIL, seed=11)
    res = world.run(main)
    assert res[0] == ERR_NETWORK
    (data1, st1), (data2, st2) = res[1]
    assert bytes(data1) == b"hello" and st1.error == SUCCESS
    assert data2 is None and st2.error == ERR_NETWORK


def test_errors_return_does_not_mask_semantic_errors():
    """ERRORS_RETURN governs device failures only: MPI usage errors
    (truncation) still raise."""
    from repro.mpi.exceptions import TruncationError

    def main(comm):
        comm.set_errhandler(ERRORS_RETURN)
        if comm.rank == 0:
            yield from comm.send(b"x" * 100, dest=1, tag=1)
        else:
            buf = bytearray(10)  # too small
            yield from comm.recv(source=0, tag=1, buf=buf)

    with pytest.raises(TruncationError):
        World(2, platform="ethernet", seed=0).run(main)


def test_set_errhandler_validates():
    def main(comm):
        with pytest.raises(MPIError):
            comm.set_errhandler("errors_panic")
        assert comm.get_errhandler() == ERRORS_ARE_FATAL
        yield from comm.barrier()

    World(2, platform="meiko", seed=0).run(main)


def test_errhandler_inherited_by_dup():
    def main(comm):
        comm.set_errhandler(ERRORS_RETURN)
        dup = yield from comm.dup()
        return dup.get_errhandler()

    res = World(2, platform="meiko", seed=0).run(main)
    assert res == [ERRORS_RETURN, ERRORS_RETURN]


# ---------------------------------------------------------------------------
# watchdog and failure reporting
# ---------------------------------------------------------------------------


def test_watchdog_names_stuck_pair_on_meiko_eager_loss():
    """A lost eager message on the Meiko leaves sender (awaiting the
    ssend ack) and receiver (posted recv) stuck; the watchdog's report
    names both and describes their state."""

    def main(comm):
        if comm.rank == 0:
            yield from comm.ssend(b"x" * 64, dest=1, tag=9)
        else:
            yield from comm.recv(source=0, tag=9)

    world = World(2, platform="meiko",
                  faults=FaultPlan.of(PacketLoss(probability=1.0, max_events=1)),
                  seed=0)
    with pytest.raises(DeadlockError) as ei:
        world.run(main)
    e = ei.value
    assert e.stuck_ranks == [0, 1]
    msg = str(e)
    assert "rank 0" in msg and "rank 1" in msg
    assert "tag=9" in msg  # the posted receive is described


def test_world_reports_failing_rank_and_time():
    """A rank exception aborts the survivors and is re-raised with the
    rank id and simulated timestamp attached."""

    def main(comm):
        yield from comm.barrier()
        if comm.rank == 2:
            raise RuntimeError("boom")
        # survivors would block forever without the abort
        yield from comm.recv(source=comm.rank, tag=99)

    world = World(4, platform="meiko", seed=0)
    with pytest.raises(RuntimeError, match="boom") as ei:
        world.run(main)
    assert ei.value.mpi_rank == 2
    assert ei.value.sim_time_us > 0
    notes = getattr(ei.value, "__notes__", [])
    assert any("rank" in n for n in notes)
