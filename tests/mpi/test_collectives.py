"""Collective-operation tests, parametrized over every device."""

import numpy as np
import pytest

from repro.mpi import World
from repro.mpi import collectives as coll
from tests.mpi.conftest import run_world


# ---------------------------------------------------------------------------
# bcast
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8])
def test_bcast_array(any_device, nprocs):
    platform, device = any_device

    def main(comm):
        buf = np.arange(32, dtype=np.float64) if comm.rank == 0 else np.zeros(32)
        yield from comm.bcast(buf, root=0)
        return buf.copy()

    res = run_world(nprocs, main, platform, device)
    for r in res:
        assert np.array_equal(r, np.arange(32, dtype=np.float64))


def test_bcast_nonzero_root(any_device):
    platform, device = any_device

    def main(comm):
        buf = np.full(8, comm.rank, dtype=np.int32)
        yield from comm.bcast(buf, root=2)
        return buf.copy()

    res = run_world(4, main, platform, device)
    for r in res:
        assert np.all(r == 2)


def test_bcast_bytes_buffer(any_device):
    platform, device = any_device

    def main(comm):
        buf = bytearray(b"root-data") if comm.rank == 0 else bytearray(9)
        yield from comm.bcast(buf, root=0)
        return bytes(buf)

    assert set(run_world(3, main, platform, device)) == {b"root-data"}


def test_bcast_large_payload(any_device):
    platform, device = any_device
    n = 32768

    def main(comm):
        buf = np.arange(n, dtype=np.float64) if comm.rank == 0 else np.zeros(n)
        yield from comm.bcast(buf, root=0)
        return float(buf.sum())

    res = run_world(4, main, platform, device)
    assert all(v == float(np.arange(n).sum()) for v in res)


def test_hardware_bcast_faster_than_pt2pt():
    """Figure 7's mechanism: the low-latency device's hardware broadcast
    beats MPICH's point-to-point broadcast, and the gap grows with P."""

    def main(comm):
        buf = np.zeros(128, dtype=np.float64)
        yield from comm.barrier()
        t0 = comm.wtime()
        yield from comm.bcast(buf, root=0)
        yield from comm.barrier()
        return comm.wtime() - t0

    def bcast_time(device, nprocs):
        return max(run_world(nprocs, main, "meiko", device))

    for nprocs in (4, 16):
        hw = bcast_time("lowlatency", nprocs)
        sw = bcast_time("mpich", nprocs)
        assert hw < sw, f"hardware bcast {hw} not faster than pt2pt {sw} at P={nprocs}"


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", [2, 3, 7])
def test_barrier_synchronizes(any_device, nprocs):
    """No rank leaves the barrier before the last one has entered."""
    platform, device = any_device

    def main(comm):
        yield comm.endpoint.sim.timeout(100.0 * comm.rank)
        entered = comm.wtime()
        yield from comm.barrier()
        left = comm.wtime()
        return (entered, left)

    res = run_world(nprocs, main, platform, device)
    last_entry = max(t for t, _ in res)
    for _, left in res:
        assert left >= last_entry


# ---------------------------------------------------------------------------
# reduce / allreduce
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
def test_reduce_sum(any_device, nprocs):
    platform, device = any_device

    def main(comm):
        local = np.full(4, float(comm.rank + 1))
        result = yield from comm.reduce(local, root=0)
        return None if result is None else result.copy()

    res = run_world(nprocs, main, platform, device)
    expected = np.full(4, sum(range(1, nprocs + 1)), dtype=float)
    assert np.array_equal(res[0], expected)
    assert all(r is None for r in res[1:])


def test_reduce_max_min(any_device):
    platform, device = any_device

    def main(comm):
        local = np.array([float(comm.rank), float(-comm.rank)])
        mx = yield from comm.reduce(local, root=0, op=coll.MAX)
        yield from comm.barrier()
        mn = yield from comm.reduce(local, root=0, op=coll.MIN)
        if comm.rank == 0:
            return (mx.tolist(), mn.tolist())

    res = run_world(4, main, platform, device)
    assert res[0] == ([3.0, 0.0], [0.0, -3.0])


def test_allreduce_everywhere(any_device):
    platform, device = any_device

    def main(comm):
        local = np.array([comm.rank + 1.0])
        result = yield from comm.allreduce(local)
        return float(result[0])

    res = run_world(5, main, platform, device)
    assert res == [15.0] * 5


def test_reduce_nonroot_gets_none_and_root_nonzero(any_device):
    platform, device = any_device

    def main(comm):
        result = yield from comm.reduce(np.ones(2), root=2)
        return result is not None

    res = run_world(4, main, platform, device)
    assert res == [False, False, True, False]


# ---------------------------------------------------------------------------
# gather / scatter / allgather / alltoall
# ---------------------------------------------------------------------------


def test_gather(any_device):
    platform, device = any_device

    def main(comm):
        out = yield from comm.gather(("rank", comm.rank), root=0)
        return out

    res = run_world(4, main, platform, device)
    assert res[0] == [("rank", i) for i in range(4)]
    assert res[1] is None


def test_scatter(any_device):
    platform, device = any_device

    def main(comm):
        chunks = [f"part{i}" for i in range(comm.size)] if comm.rank == 1 else None
        part = yield from comm.scatter(chunks, root=1)
        return part

    assert run_world(3, main, platform, device) == ["part0", "part1", "part2"]


def test_scatter_wrong_length_rejected(any_device):
    platform, device = any_device

    def main(comm):
        from repro.mpi.exceptions import MPIError

        if comm.size == 1:
            with pytest.raises(MPIError):
                yield from comm.scatter([1, 2], root=0)
        return True

    run_world(1, main, platform, device)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
def test_allgather(any_device, nprocs):
    platform, device = any_device

    def main(comm):
        out = yield from comm.allgather(comm.rank * 10)
        return out

    res = run_world(nprocs, main, platform, device)
    for r in res:
        assert r == [i * 10 for i in range(nprocs)]


@pytest.mark.parametrize("nprocs", [2, 4])
def test_alltoall(any_device, nprocs):
    platform, device = any_device

    def main(comm):
        objs = [(comm.rank, dst) for dst in range(comm.size)]
        out = yield from comm.alltoall(objs)
        return out

    res = run_world(nprocs, main, platform, device)
    for rank, r in enumerate(res):
        assert r == [(src, rank) for src in range(nprocs)]


# ---------------------------------------------------------------------------
# communicator management
# ---------------------------------------------------------------------------


def test_dup_isolates_traffic(any_device):
    """A message on the dup'ed communicator must not match a receive on
    the original, even with identical (source, tag)."""
    platform, device = any_device

    def main(comm):
        comm2 = yield from comm.dup()
        assert comm2.context_id != comm.context_id
        if comm.rank == 0:
            yield from comm2.send(b"on-dup", dest=1, tag=1)
            yield from comm.send(b"on-world", dest=1, tag=1)
        else:
            data, _ = yield from comm.recv(source=0, tag=1)
            data2, _ = yield from comm2.recv(source=0, tag=1)
            return (bytes(data), bytes(data2))

    assert run_world(2, main, platform, device)[1] == (b"on-world", b"on-dup")


def test_split_into_halves(any_device):
    platform, device = any_device

    def main(comm):
        color = comm.rank % 2
        sub = yield from comm.split(color, key=comm.rank)
        # exchange within the subcommunicator
        local = np.array([float(comm.rank)])
        result = yield from sub.allreduce(local)
        return (sub.rank, sub.size, float(result[0]))

    res = run_world(4, main, platform, device)
    # evens: world ranks 0,2 -> sum 2; odds: 1,3 -> sum 4
    assert res[0] == (0, 2, 2.0)
    assert res[2] == (1, 2, 2.0)
    assert res[1] == (0, 2, 4.0)
    assert res[3] == (1, 2, 4.0)


def test_split_undefined_color(any_device):
    platform, device = any_device

    def main(comm):
        color = None if comm.rank == 0 else 7
        sub = yield from comm.split(color)
        if sub is None:
            return None
        return (sub.rank, sub.size)

    res = run_world(3, main, platform, device)
    assert res[0] is None
    assert res[1] == (0, 2)
    assert res[2] == (1, 2)


def test_split_key_orders_ranks(any_device):
    platform, device = any_device

    def main(comm):
        # reverse the ordering via the key
        sub = yield from comm.split(0, key=-comm.rank)
        return sub.rank

    res = run_world(3, main, platform, device)
    assert res == [2, 1, 0]


def test_wildcard_recv_does_not_steal_collective_traffic(any_device):
    """An outstanding ANY_SOURCE/ANY_TAG irecv must not intercept
    a concurrent broadcast's internal messages."""
    platform, device = any_device

    def main(comm):
        req = yield from comm.irecv()  # wildcard, matched only at the end
        buf = np.full(4, comm.rank, dtype=np.float64)
        yield from comm.bcast(buf, root=0)
        if comm.rank == 0:
            yield from comm.send(b"direct", dest=1, tag=3)
            return buf.tolist()
        elif comm.rank == 1:
            status = yield from comm.wait(req)
            return (bytes(req.data), status.tag, buf.tolist())
        else:
            # cancel never-matched wildcard by sending to self? Simply
            # send the expected message from rank 0 only to rank 1; other
            # ranks leave the request pending and just return.
            return buf.tolist()

    res = run_world(3, main, platform, device)
    assert res[1][0] == b"direct"
    assert res[1][1] == 3
    assert res[1][2] == [0.0, 0.0, 0.0, 0.0]


# ---------------------------------------------------------------------------
# scan / exscan / reduce_scatter — non-power-of-two and 1-rank edges
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 6])
def test_scan_prefix_sums(all_devices, nprocs):
    platform, device = all_devices

    def main(comm):
        local = np.full(4, float(comm.rank + 1))
        out = yield from comm.scan(local)
        return out.copy()

    res = run_world(nprocs, main, platform, device)
    for rank, out in enumerate(res):
        expect = sum(range(1, rank + 2))  # inclusive prefix of 1..rank+1
        assert np.array_equal(out, np.full(4, float(expect)))


@pytest.mark.parametrize("nprocs", [1, 3, 5])
def test_exscan_exclusive_prefix(all_devices, nprocs):
    platform, device = all_devices

    def main(comm):
        local = np.full(2, float(comm.rank + 1))
        out = yield from comm.exscan(local)
        return None if out is None else out.copy()

    res = run_world(nprocs, main, platform, device)
    assert res[0] is None  # MPI_Exscan is undefined at rank 0
    for rank in range(1, nprocs):
        expect = sum(range(1, rank + 1))  # exclusive prefix of 1..rank
        assert np.array_equal(res[rank], np.full(2, float(expect)))


def test_scan_max_operator(all_devices):
    platform, device = all_devices

    def main(comm):
        local = np.array([float((comm.rank * 3) % 5)])
        out = yield from comm.scan(local, op=coll.MAX)
        return float(out[0])

    res = run_world(5, main, platform, device)
    values = [(r * 3) % 5 for r in range(5)]
    assert res == [float(max(values[: i + 1])) for i in range(5)]


@pytest.mark.parametrize("nprocs", [1, 3, 5, 6])
def test_reduce_scatter_blocks(all_devices, nprocs):
    platform, device = all_devices
    block = 3

    def main(comm):
        send = np.arange(block * comm.size, dtype=np.float64) + comm.rank
        out = yield from comm.reduce_scatter(send)
        return out.copy()

    res = run_world(nprocs, main, platform, device)
    rank_sum = sum(range(nprocs))
    for rank, out in enumerate(res):
        base = np.arange(block * nprocs, dtype=np.float64) * nprocs + rank_sum
        assert np.array_equal(out, base[rank * block : (rank + 1) * block])


def test_reduce_scatter_single_element_blocks(all_devices):
    """nelems == nprocs: each rank's block is exactly one element."""
    platform, device = all_devices

    def main(comm):
        send = np.full(comm.size, float(comm.rank))
        out = yield from comm.reduce_scatter(send)
        return out.copy()

    res = run_world(3, main, platform, device)
    for out in res:
        assert np.array_equal(out, np.array([3.0]))  # 0+1+2
