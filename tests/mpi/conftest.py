"""Re-exports of the repo-wide fixtures (kept for import compatibility)."""

from tests.conftest import ALL_DEVICES, CLUSTER_DEVICES, MEIKO_DEVICES, run_world

__all__ = ["ALL_DEVICES", "CLUSTER_DEVICES", "MEIKO_DEVICES", "run_world"]
