"""The chaos-soak gate: pinned mid-run crash through ULFM recovery.

The acceptance scenario for survivable MPI: 8 ranks, rank 3 crashes
mid-relaxation (t=900 µs on the paper-era platforms, t=40 µs on the
modern fabrics, where the whole job runs in ~90 µs), and on **every**
device cell the survivors detect, revoke, shrink, agree, restore the
last committed checkpoint, and finish with the right answer — with a
byte-identical recovery trace (``trace_sha``) across repeated seeded
runs *and* across revisions (the pinned ``SOAK_TRACE_SHA`` goldens).
This is what the ``chaos-soak`` CI job runs via ``repro chaos --soak``.
"""

import io
import re

import pytest

from repro.bench.chaos import format_soak, soak_cell, soak_sweep
from repro.mpi.ft import DETECT_DELAY
from repro.platforms import DEVICE_MATRIX, device_key

PHASES = ("crash", "detect", "revoke", "shrink", "agree")

#: golden recovery-trace digests of the pinned soak scenario, one per
#: matrix cell.  A digest shift means the recovery path's event
#: sequence changed — bump deliberately, never accidentally.
SOAK_TRACE_SHA = {
    "meiko-lowlatency": "1e9fa1699053de1d93f1c21375149a2d3e3060ab4e9cb90c168783ba87fe251e",
    "meiko-mpich": "7f4e795140af3ad21d80b6edd62d144c04a8b60b87f8b2ade10515e1ff84bf90",
    "atm-tcp": "03ab96dcbbde56fa15e4ae690537d43cbb74ceccc49aa394b761ab9d24829a0d",
    "atm-udp": "b876a930efff6c1d1b789be82747c3928527b10c167f61b56a1c6e82dacf45f8",
    "ethernet-tcp": "74b50a231869f77b9c2b7e8fdc16a4b5118f28f6da89b3022936cc3df46beada",
    "ethernet-udp": "7ce63bd2b2d02b5b91c09c969c9ed9a5bd750526b2bd7779a543d2ff50d566f2",
    "modern-rdma": "df5945e07ff072507477afaa1ee94d297223a15ba9535cf87266cecfbb409246",
    "modern-cxl": "b1610aa1d07e1593a11a4be8451133cc0dfd8764932c1f3e12f3a8a5511f1a7d",
}


def test_soak_cell_recovers(all_devices):
    platform, device = all_devices
    row = soak_cell(platform, device)
    assert row["outcome"] == "ok", row["diagnostic"]
    assert row["recoveries"] >= 1
    assert row["survivors"] == 7  # 8 ranks, one dead
    tl = row["timeline"]
    assert set(PHASES) <= set(tl)
    assert tl["crash"] <= tl["detect"] <= tl["revoke"] <= tl["shrink"] \
        <= tl["agree"]
    # detection latency is the platform's failure-detector delay
    assert row["detect_us"] == pytest.approx(DETECT_DELAY[platform])
    assert row["recover_us"] > 0
    assert re.fullmatch(r"[0-9a-f]{64}", row["trace_sha"])
    assert row["trace_sha"] == SOAK_TRACE_SHA[row["cell"]]


def test_soak_cell_is_deterministic(all_devices):
    platform, device = all_devices
    assert soak_cell(platform, device) == soak_cell(platform, device)


def test_soak_sweep_gate():
    """The gate itself: every cell of the device matrix recovers, and
    every repetition reproduces the recovery trace byte-for-byte."""
    rows = soak_sweep(repeat=2)
    assert len(rows) == len(DEVICE_MATRIX)
    assert {r["cell"] for r in rows} == {
        device_key(p, d) for p, d in DEVICE_MATRIX
    }
    for row in rows:
        assert row["outcome"] == "ok", (row["cell"], row["diagnostic"])
        assert row["deterministic"], row["cell"]
        assert row["trace_sha"] == SOAK_TRACE_SHA[row["cell"]], row["cell"]


def test_soak_sweep_parallel_matches_serial():
    cells = [("meiko", "lowlatency"), ("atm", "udp")]
    serial = soak_sweep(cells=cells, repeat=1)
    par = soak_sweep(cells=cells, repeat=1, workers=2)
    assert par == serial


def test_format_soak_renders_every_cell():
    rows = soak_sweep(cells=[("meiko", "lowlatency")], repeat=1)
    text = format_soak(rows)
    assert "meiko-lowlatency" in text
    assert "ok" in text
    assert rows[0]["trace_sha"][:12] in text


def test_traced_sweep_exports_a_valid_chrome_trace(tmp_path):
    """Balanced B/E spans even though the victim's generator dies
    mid-call: its open spans must be closed inside its own run, not
    leak from the garbage collector into a later cell's trace."""
    import json

    from repro.obs import EventBus
    from repro.obs.export import write_trace
    from repro.obs.schema import validate_chrome_trace

    bus = EventBus()
    soak_sweep(cells=[("meiko", "lowlatency"), ("meiko", "mpich")],
               repeat=1, obs=bus)
    path = tmp_path / "soak.json"
    write_trace(bus, str(path))
    assert validate_chrome_trace(json.loads(path.read_text())) == []


def test_cli_soak_smoke(tmp_path):
    from repro.cli import main

    trace = tmp_path / "soak-trace.json"
    out = io.StringIO()
    rc = main(["chaos", "--soak", "--cells", "meiko-lowlatency",
               "--trace", str(trace)], out=out)
    assert rc == 0
    assert "meiko-lowlatency" in out.getvalue()
    assert trace.exists()


def test_cli_soak_fails_loudly_on_bad_cell():
    from repro.cli import main

    rc = main(["chaos", "--soak", "--cells", "nonexistent-cell"],
              out=io.StringIO())
    assert rc != 0
