"""The chaos-soak gate: pinned mid-run crash through ULFM recovery.

The acceptance scenario for survivable MPI: 8 ranks, rank 3 crashes at
t=900 µs mid-relaxation, and on **every** device cell the survivors
detect, revoke, shrink, agree, restore the last committed checkpoint,
and finish with the right answer — with a byte-identical recovery
trace (``trace_sha``) across repeated seeded runs.  This is what the
``chaos-soak`` CI job runs via ``repro chaos --soak``.
"""

import io
import re

import pytest

from repro.bench.chaos import format_soak, soak_cell, soak_sweep
from repro.mpi.ft import DETECT_DELAY

PHASES = ("crash", "detect", "revoke", "shrink", "agree")


def test_soak_cell_recovers(all_devices):
    platform, device = all_devices
    row = soak_cell(platform, device)
    assert row["outcome"] == "ok", row["diagnostic"]
    assert row["recoveries"] >= 1
    assert row["survivors"] == 7  # 8 ranks, one dead
    tl = row["timeline"]
    assert set(PHASES) <= set(tl)
    assert tl["crash"] <= tl["detect"] <= tl["revoke"] <= tl["shrink"] \
        <= tl["agree"]
    # detection latency is the platform's failure-detector delay
    assert row["detect_us"] == pytest.approx(DETECT_DELAY[platform])
    assert row["recover_us"] > 0
    assert re.fullmatch(r"[0-9a-f]{64}", row["trace_sha"])


def test_soak_cell_is_deterministic(all_devices):
    platform, device = all_devices
    assert soak_cell(platform, device) == soak_cell(platform, device)


def test_soak_sweep_gate():
    """The gate itself: every cell of the device matrix recovers, and
    every repetition reproduces the recovery trace byte-for-byte."""
    rows = soak_sweep(repeat=2)
    assert len(rows) == 6
    assert len({r["cell"] for r in rows}) == 6
    for row in rows:
        assert row["outcome"] == "ok", (row["cell"], row["diagnostic"])
        assert row["deterministic"], row["cell"]


def test_soak_sweep_parallel_matches_serial():
    cells = [("meiko", "lowlatency"), ("atm", "udp")]
    serial = soak_sweep(cells=cells, repeat=1)
    par = soak_sweep(cells=cells, repeat=1, workers=2)
    assert par == serial


def test_format_soak_renders_every_cell():
    rows = soak_sweep(cells=[("meiko", "lowlatency")], repeat=1)
    text = format_soak(rows)
    assert "meiko-lowlatency" in text
    assert "ok" in text
    assert rows[0]["trace_sha"][:12] in text


def test_traced_sweep_exports_a_valid_chrome_trace(tmp_path):
    """Balanced B/E spans even though the victim's generator dies
    mid-call: its open spans must be closed inside its own run, not
    leak from the garbage collector into a later cell's trace."""
    import json

    from repro.obs import EventBus
    from repro.obs.export import write_trace
    from repro.obs.schema import validate_chrome_trace

    bus = EventBus()
    soak_sweep(cells=[("meiko", "lowlatency"), ("meiko", "mpich")],
               repeat=1, obs=bus)
    path = tmp_path / "soak.json"
    write_trace(bus, str(path))
    assert validate_chrome_trace(json.loads(path.read_text())) == []


def test_cli_soak_smoke(tmp_path):
    from repro.cli import main

    trace = tmp_path / "soak-trace.json"
    out = io.StringIO()
    rc = main(["chaos", "--soak", "--cells", "meiko-lowlatency",
               "--trace", str(trace)], out=out)
    assert rc == 0
    assert "meiko-lowlatency" in out.getvalue()
    assert trace.exists()


def test_cli_soak_fails_loudly_on_bad_cell():
    from repro.cli import main

    rc = main(["chaos", "--soak", "--cells", "nonexistent-cell"],
              out=io.StringIO())
    assert rc != 0
