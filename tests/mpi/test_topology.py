"""Cartesian topology tests (dims_create, CartComm, halo exchange)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi import PROC_NULL, World, create_cart, dims_create
from repro.mpi.exceptions import CommunicatorError
from tests.conftest import run_world


# ---------------------------------------------------------------------------
# dims_create
# ---------------------------------------------------------------------------


def test_dims_create_balanced():
    assert sorted(dims_create(12, 2)) == [3, 4]
    assert sorted(dims_create(16, 2)) == [4, 4]
    assert sorted(dims_create(8, 3)) == [2, 2, 2]


def test_dims_create_respects_fixed():
    out = dims_create(12, 2, [3, 0])
    assert out == [3, 4]


def test_dims_create_prime():
    assert sorted(dims_create(7, 2)) == [1, 7]


def test_dims_create_errors():
    with pytest.raises(CommunicatorError):
        dims_create(12, 2, [5, 0])  # 12 not divisible by 5
    with pytest.raises(CommunicatorError):
        dims_create(12, 2, [3, 5])  # fully fixed but wrong product
    with pytest.raises(CommunicatorError):
        dims_create(12, 3, [0, 0])  # length mismatch


@given(st.integers(min_value=1, max_value=256), st.integers(min_value=1, max_value=4))
def test_dims_create_product_property(n, ndims):
    dims = dims_create(n, ndims)
    prod = 1
    for d in dims:
        prod *= d
    assert prod == n
    assert all(d >= 1 for d in dims)


# ---------------------------------------------------------------------------
# CartComm structure
# ---------------------------------------------------------------------------


def test_cart_coords_roundtrip(meiko_device):
    platform, device = meiko_device

    def main(comm):
        cart = yield from create_cart(comm, [2, 3])
        me = cart.coords()
        assert cart.cart_rank(me) == cart.rank
        # every rank's coords round-trip
        for r in range(cart.size):
            assert cart.cart_rank(cart.coords(r)) == r
        return me

    res = run_world(6, main, platform, device)
    assert res[0] == (0, 0)
    assert res[5] == (1, 2)


def test_cart_shift_interior_and_edges():
    def main(comm):
        cart = yield from create_cart(comm, [2, 2], periods=[False, False])
        src, dst = cart.shift(0, 1)
        yield comm.endpoint.sim.timeout(0)
        return (cart.coords(), src, dst)

    res = run_world(4, main)
    # rank 0 = (0,0): shifting along dim 0 -> src PROC_NULL, dst rank 2
    assert res[0] == ((0, 0), PROC_NULL, 2)
    assert res[2] == ((1, 0), 0, PROC_NULL)


def test_cart_shift_periodic_wraps():
    def main(comm):
        cart = yield from create_cart(comm, [4], periods=[True])
        src, dst = cart.shift(0, 1)
        yield comm.endpoint.sim.timeout(0)
        return (src, dst)

    res = run_world(4, main)
    assert res[0] == (3, 1)
    assert res[3] == (2, 0)


def test_cart_excess_ranks_get_none():
    def main(comm):
        cart = yield from create_cart(comm, [2])
        return cart if cart is None else cart.rank

    res = run_world(3, main)
    assert res == [0, 1, None]


def test_cart_too_big_rejected():
    def main(comm):
        with pytest.raises(CommunicatorError):
            yield from create_cart(comm, [5])

    run_world(2, main)


def test_cart_sub_splits_rows():
    def main(comm):
        cart = yield from create_cart(comm, [2, 2])
        row = yield from cart.sub([False, True])  # keep the column dim
        local = np.array([float(cart.rank)])
        total = yield from row.allreduce(local)
        return (cart.coords(), row.size, float(total[0]))

    res = run_world(4, main)
    # rows {0,1} and {2,3}: sums 1 and 5
    assert res[0] == ((0, 0), 2, 1.0)
    assert res[3] == ((1, 1), 2, 5.0)


def test_cart_neighbors():
    def main(comm):
        cart = yield from create_cart(comm, [3], periods=[True])
        yield comm.endpoint.sim.timeout(0)
        return cart.neighbors()

    res = run_world(3, main)
    assert res[1] == [0, 2]


# ---------------------------------------------------------------------------
# halo exchange integration (the canonical Cartesian use)
# ---------------------------------------------------------------------------


def test_halo_exchange_1d_ring(any_device):
    """Each rank exchanges boundary values with its ring neighbours via
    sendrecv on a periodic Cartesian communicator."""
    platform, device = any_device

    def main(comm):
        cart = yield from create_cart(comm, [comm.size], periods=[True])
        left, right = cart.shift(0, 1)
        mine = np.full(4, float(cart.rank))
        halo = np.zeros(4)
        # send my block right, receive my left neighbour's block
        _, status = yield from cart.sendrecv(
            mine, dest=right, recvbuf=halo, source=left, sendtag=11, recvtag=11
        )
        return float(halo[0]), status.source

    nprocs = 4
    res = run_world(nprocs, main, platform, device)
    for r, (val, src) in enumerate(res):
        expected = (r - 1) % nprocs
        assert val == float(expected)
        assert src == expected
