"""Tests for the PMPI-style profiling wrapper."""

import numpy as np

from repro.mpi.profiling import profile
from tests.conftest import run_world


def test_counts_and_bytes(meiko_device):
    platform, device = meiko_device

    def main(comm):
        p = profile(comm)
        if comm.rank == 0:
            yield from p.send(bytes(100), dest=1, tag=1)
            yield from p.send(bytes(50), dest=1, tag=2)
            data, _ = yield from p.recv(source=1, tag=3)
            return (dict(p.stats.calls), p.stats.bytes_sent, p.stats.bytes_received)
        else:
            yield from comm.recv(source=0, tag=1)
            yield from comm.recv(source=0, tag=2)
            yield from comm.send(bytes(25), dest=0, tag=3)

    calls, sent, received = run_world(2, main, platform, device)[0]
    assert calls["send"] == 2
    assert calls["recv"] == 1
    assert sent == 150
    assert received == 25


def test_time_in_mpi_accumulates(meiko_device):
    platform, device = meiko_device

    def main(comm):
        p = profile(comm)
        if comm.rank == 0:
            yield from p.send(b"x", dest=1, tag=1)
            return p.stats.time_in_mpi
        else:
            yield comm.endpoint.sim.timeout(500.0)
            yield from comm.recv(source=0, tag=1)

    t = run_world(2, main, platform, device)[0]
    assert t > 0


def test_blocking_time_counted():
    """A receive that waits 5 ms shows ~5 ms inside MPI."""

    def main(comm):
        p = profile(comm)
        if comm.rank == 0:
            data, _ = yield from p.recv(source=1, tag=1)
            return p.stats.time_by_call["recv"]
        else:
            yield comm.endpoint.sim.timeout(5000.0)
            yield from comm.send(b"x", dest=0, tag=1)

    t = run_world(2, main)[0]
    assert t >= 4500.0


def test_collectives_tracked():
    def main(comm):
        p = profile(comm)
        buf = np.zeros(8) if comm.rank else np.ones(8)
        yield from p.bcast(buf, root=0)
        yield from p.barrier()
        result = yield from p.allreduce(np.ones(2))
        return (dict(p.stats.calls), float(result[0]))

    res = run_world(3, main)
    calls, total = res[0]
    assert calls == {"bcast": 1, "barrier": 1, "allreduce": 1}
    assert total == 3.0


def test_passthrough_attributes():
    def main(comm):
        p = profile(comm)
        yield comm.endpoint.sim.timeout(0)
        return (p.rank, p.size, p.context_id == comm.context_id)

    res = run_world(2, main)
    assert res[0] == (0, 2, True)
    assert res[1] == (1, 2, True)


def test_summary_renders():
    def main(comm):
        p = profile(comm)
        other = 1 - comm.rank
        yield from p.sendrecv(b"hi", dest=other, source=other)
        return p.stats.summary()

    text = run_world(2, main)[0]
    assert "sendrecv" in text and "MPI calls:" in text
