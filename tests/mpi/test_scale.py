"""Scale tests: the full 64-node CS/2 and multi-run worlds."""

import numpy as np
import pytest

from repro.mpi import World


def test_full_64_node_meiko_allreduce():
    """The paper's machine is a 64-node CS/2: a full-machine collective
    works and the fat tree spans three stages."""

    def main(comm):
        result = yield from comm.allreduce(np.array([float(comm.rank)]))
        return float(result[0])

    w = World(64, platform="meiko", device="lowlatency")
    assert w.machine.network.height() == 3
    res = w.run(main)
    assert res == [float(sum(range(64)))] * 64


def test_full_64_node_hardware_bcast():
    def main(comm):
        buf = np.full(16, float(comm.rank))
        yield from comm.bcast(buf, root=7)
        return float(buf[0])

    res = World(64, platform="meiko").run(main)
    assert res == [7.0] * 64


def test_hardware_bcast_latency_nearly_flat_in_p():
    """One injection, one traversal: hardware broadcast time barely grows
    from 4 to 64 nodes (while a tree would grow by log P)."""

    def main(comm):
        buf = np.zeros(16)
        yield from comm.barrier()  # roughly synchronize the start
        t0 = comm.wtime()
        yield from comm.bcast(buf, root=0)
        return comm.wtime() - t0  # per-rank completion, no trailing barrier

    def bcast_time(p):
        return max(World(p, platform="meiko").run(main))

    t4, t64 = bcast_time(4), bcast_time(64)
    assert t64 < t4 * 1.7  # one traversal: far from a log/linear blowup


def test_world_supports_sequential_runs():
    """A World can run several mains back to back on one clock."""
    w = World(2)

    def pingpong(comm):
        other = 1 - comm.rank
        if comm.rank == 0:
            yield from comm.send(b"x", dest=other, tag=1)
        else:
            yield from comm.recv(source=0, tag=1)
        return comm.wtime()

    t1 = max(w.run(pingpong))
    t2 = max(w.run(pingpong))
    assert t2 > t1  # the clock continued


def test_many_communicators():
    """Dozens of split/dup'ed communicators stay isolated."""

    def main(comm):
        comms = [comm]
        for _ in range(5):
            comms.append((yield from comms[-1].dup()))
        # a message on each communicator with the same (source, tag)
        total = 0
        for i, c in enumerate(comms):
            if c.rank == 0:
                yield from c.send(bytes([i]), dest=1, tag=5)
            else:
                data, _ = yield from c.recv(source=0, tag=5)
                total += data[0]
        return total

    res = World(2).run(main)
    assert res[1] == sum(range(6))


def test_deep_split_tree():
    """Recursive halving down to singleton communicators."""

    def main(comm):
        c = comm
        depth = 0
        while c.size > 1:
            color = c.rank // ((c.size + 1) // 2)
            c = yield from c.split(color, key=c.rank)
            depth += 1
        return depth

    res = World(8).run(main)
    assert res == [3] * 8
