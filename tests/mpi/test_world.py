"""World runner tests: errors, deadlock detection, context allocation."""

import pytest

from repro.errors import ConfigurationError
from repro.mpi import World


def test_run_returns_per_rank_values():
    def main(comm):
        yield comm.endpoint.sim.timeout(1.0)
        return comm.rank * 2

    assert World(3).run(main) == [0, 2, 4]


def test_rank_exception_propagates():
    def main(comm):
        yield comm.endpoint.sim.timeout(1.0)
        if comm.rank == 1:
            raise ValueError("rank 1 exploded")

    with pytest.raises(ValueError, match="rank 1 exploded"):
        World(2).run(main)


def test_deadlock_detected():
    def main(comm):
        # both ranks receive; nobody sends
        yield from comm.recv(source=1 - comm.rank, tag=0)

    with pytest.raises(ConfigurationError, match="deadlock"):
        World(2).run(main)


def test_time_limit():
    def main(comm):
        yield comm.endpoint.sim.timeout(10_000.0)

    with pytest.raises(ConfigurationError, match="time limit"):
        World(1).run(main, limit=100.0)


def test_unknown_platform_rejected():
    with pytest.raises(ConfigurationError):
        World(2, platform="transputer")


def test_unknown_device_rejected():
    with pytest.raises(ConfigurationError):
        World(2, platform="meiko", device="warp")


def test_zero_procs_rejected():
    with pytest.raises(ConfigurationError):
        World(0)


def test_context_allocation_is_memoized():
    w = World(2)
    a = w.allocate_context(("k", 1))
    b = w.allocate_context(("k", 2))
    assert a != b
    assert w.allocate_context(("k", 1)) == a


def test_wtime_monotonic_and_shared():
    def main(comm):
        t0 = comm.wtime()
        yield from comm.barrier()
        t1 = comm.wtime()
        assert t1 >= t0
        return t1

    times = World(3).run(main)
    # all ranks read the same global clock: spread is small after a barrier
    assert max(times) - min(times) < 1000.0


def test_determinism_same_seed():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"x" * 100, dest=1, tag=1)
            return comm.wtime()
        data, _ = yield from comm.recv(source=0, tag=1)
        return comm.wtime()

    t1 = World(2, seed=5).run(main)
    t2 = World(2, seed=5).run(main)
    assert t1 == t2


def test_run_subset_of_ranks():
    def main(comm):
        yield comm.endpoint.sim.timeout(1.0)
        return comm.rank

    w = World(4)
    assert w.run(main, ranks=[0, 2]) == [0, 2]
