"""Bucketed matching engine vs a reference FIFO-scan implementation.

The production :class:`~repro.mpi.matching.MatchQueues` hash-buckets
both queues by (context, source, tag) for O(1) lookups; MPI ordering
semantics (non-overtaking, FIFO match order, wildcard rules) and the
``comparisons`` counts — which feed the simulated matching cost — must
be EXACTLY those of the plain FIFO scan it replaced.  The reference
below is that scan, verbatim in structure; the property tests drive
both with identical operation sequences and require identical results.
"""

import random
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, INTERNAL_TAG_BASE
from repro.mpi.envelope import Envelope
from repro.mpi.exceptions import ResourceExhausted
from repro.mpi.matching import Arrival, MatchQueues
from repro.mpi.request import Request


class ReferenceQueues:
    """The pre-bucketing engine: linear FIFO scans over plain deques."""

    def __init__(self, max_unexpected=4096):
        self.posted = deque()
        self.unexpected = deque()
        self.max_unexpected = max_unexpected

    @staticmethod
    def _accepts(req, env):
        return env.matches(
            source=req.peer,
            tag=req.tag,
            context=req.comm.context_id,
            any_source=ANY_SOURCE,
            any_tag=ANY_TAG,
        )

    def post(self, req):
        comparisons = 0
        for arrival in self.unexpected:
            comparisons += 1
            if self._accepts(req, arrival.envelope):
                self.unexpected.remove(arrival)
                return arrival, comparisons
        self.posted.append(req)
        return None, comparisons

    def arrive(self, arrival):
        comparisons = 0
        for req in self.posted:
            comparisons += 1
            if self._accepts(req, arrival.envelope):
                self.posted.remove(req)
                return req, comparisons
        if len(self.unexpected) >= self.max_unexpected:
            raise ResourceExhausted("overflow")
        self.unexpected.append(arrival)
        return None, comparisons

    def probe(self, source, tag, context):
        for arrival in self.unexpected:
            if arrival.envelope.matches(source, tag, context, ANY_SOURCE, ANY_TAG):
                return arrival
        return None

    def cancel_post(self, req):
        try:
            self.posted.remove(req)
            return True
        except ValueError:
            return False


class FakeComm:
    def __init__(self, context_id=0):
        self.context_id = context_id


_COMMS = {ctx: FakeComm(ctx) for ctx in (0, 1)}

SOURCES = [ANY_SOURCE, 0, 1, 2]
TAGS = [ANY_TAG, 0, 5, 7, INTERNAL_TAG_BASE, INTERNAL_TAG_BASE + 3]
CONTEXTS = [0, 1]


def _run_sequence(ops):
    """Apply one op sequence to both engines, asserting step-for-step parity."""
    fast = MatchQueues(max_unexpected=16)
    ref = ReferenceQueues(max_unexpected=16)
    posted_pairs = []  # (fast_req, ref_req) twins still possibly queued
    seq = 0

    for op in ops:
        kind = op[0]
        if kind == "post":
            _, source, tag, ctx = op
            freq = Request("recv", _COMMS[ctx], None, 0, None, source, tag)
            rreq = Request("recv", _COMMS[ctx], None, 0, None, source, tag)
            fa, fc = fast.post(freq)
            ra, rc = ref.post(rreq)
            assert fc == rc, f"post comparisons diverge: {fc} != {rc}"
            assert (fa is None) == (ra is None)
            if fa is not None:
                assert fa.envelope == ra.envelope
            else:
                posted_pairs.append((freq, rreq))
        elif kind == "arrive":
            _, src, tag, ctx = op
            env = Envelope(src=src, tag=tag, context=ctx, nbytes=4, seq=seq)
            seq += 1
            ferr = rerr = None
            fr = rr = None
            try:
                fr, fc = fast.arrive(Arrival(env, data=b"\x00" * 4))
            except ResourceExhausted as e:
                ferr = e
            try:
                rr, rc = ref.arrive(Arrival(env, data=b"\x00" * 4))
            except ResourceExhausted as e:
                rerr = e
            assert (ferr is None) == (rerr is None), "overflow behaviour diverges"
            if ferr is None:
                assert fc == rc, f"arrive comparisons diverge: {fc} != {rc}"
                assert (fr is None) == (rr is None)
                if fr is not None:
                    # the matched posted requests must be the same twin
                    twins = [p for p in posted_pairs if p[0] is fr]
                    assert twins and twins[0][1] is rr, "different posted request matched"
                    posted_pairs.remove(twins[0])
        elif kind == "probe":
            _, src, tag, ctx = op
            fp = fast.probe(src, tag, ctx)
            rp = ref.probe(src, tag, ctx)
            assert (fp is None) == (rp is None)
            if fp is not None:
                assert fp.envelope == rp.envelope
        elif kind == "cancel":
            _, idx = op
            if not posted_pairs:
                continue
            freq, rreq = posted_pairs[idx % len(posted_pairs)]
            assert fast.cancel_post(freq) == ref.cancel_post(rreq)
            posted_pairs = [p for p in posted_pairs if p[0] is not freq]

        # queue views must agree in content and FIFO order at every step
        assert [r.peer for r in fast.posted] == [r.peer for r in ref.posted]
        assert [r.tag for r in fast.posted] == [r.tag for r in ref.posted]
        assert [a.envelope for a in fast.unexpected] == [a.envelope for a in ref.unexpected]


op_strategy = st.one_of(
    st.tuples(st.just("post"), st.sampled_from(SOURCES), st.sampled_from(TAGS), st.sampled_from(CONTEXTS)),
    st.tuples(
        st.just("arrive"),
        st.sampled_from([0, 1, 2]),
        st.sampled_from([0, 5, 7, INTERNAL_TAG_BASE, INTERNAL_TAG_BASE + 3]),
        st.sampled_from(CONTEXTS),
    ),
    st.tuples(st.just("probe"), st.sampled_from(SOURCES), st.sampled_from(TAGS), st.sampled_from(CONTEXTS)),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=7)),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(op_strategy, max_size=60))
def test_bucketed_engine_matches_reference(ops):
    _run_sequence(ops)


@pytest.mark.parametrize("seed", range(6))
def test_long_random_sequences(seed):
    """Longer adversarial runs than hypothesis explores by default."""
    rng = random.Random(seed)
    ops = []
    for _ in range(600):
        r = rng.random()
        if r < 0.4:
            ops.append(("post", rng.choice(SOURCES), rng.choice(TAGS), rng.choice(CONTEXTS)))
        elif r < 0.8:
            ops.append(
                (
                    "arrive",
                    rng.choice([0, 1, 2]),
                    rng.choice([0, 5, 7, INTERNAL_TAG_BASE, INTERNAL_TAG_BASE + 3]),
                    rng.choice(CONTEXTS),
                )
            )
        elif r < 0.9:
            ops.append(("probe", rng.choice(SOURCES), rng.choice(TAGS), rng.choice(CONTEXTS)))
        else:
            ops.append(("cancel", rng.randrange(8)))
    _run_sequence(ops)


def test_nonovertaking_order_preserved():
    """Two same-key arrivals must match posted receives in send order."""
    fast = MatchQueues()
    first = Arrival(Envelope(src=1, tag=5, context=0, nbytes=4, seq=0), data=b"a" * 4)
    second = Arrival(Envelope(src=1, tag=5, context=0, nbytes=4, seq=1), data=b"b" * 4)
    fast.arrive(first)
    fast.arrive(second)
    got1, _ = fast.post(Request("recv", _COMMS[0], None, 0, None, 1, 5))
    got2, _ = fast.post(Request("recv", _COMMS[0], None, 0, None, ANY_SOURCE, ANY_TAG))
    assert got1 is first
    assert got2 is second


def test_wildcard_fifo_across_buckets():
    """ANY_SOURCE must take the OLDEST arrival across different buckets."""
    fast = MatchQueues()
    older = Arrival(Envelope(src=2, tag=5, context=0, nbytes=4, seq=0), data=b"x" * 4)
    newer = Arrival(Envelope(src=0, tag=5, context=0, nbytes=4, seq=0), data=b"y" * 4)
    fast.arrive(older)
    fast.arrive(newer)
    got, comps = fast.post(Request("recv", _COMMS[0], None, 0, None, ANY_SOURCE, 5))
    assert got is older
    assert comps == 1  # FIFO scan would find it first


def test_concrete_post_min_stamp_across_candidate_buckets():
    """A concrete arrival must match the oldest of the candidate posted
    receives, even when they live in different buckets."""
    fast = MatchQueues()
    wild = Request("recv", _COMMS[0], None, 0, None, ANY_SOURCE, 5)
    exact = Request("recv", _COMMS[0], None, 0, None, 1, 5)
    fast.post(wild)
    fast.post(exact)
    got, _ = fast.arrive(Arrival(Envelope(src=1, tag=5, context=0, nbytes=4, seq=0), data=b"z" * 4))
    assert got is wild  # posted first, so it wins
