"""Heterogeneous-cluster tests: per-host CPU speeds (Indy + Challenge)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw.node import Host, Processor
from repro.mpi import World
from repro.sim import Simulator


def test_processor_speed_scales_cost():
    sim = Simulator()
    slow = Processor(sim, "slow", speed=1.0)
    fast = Processor(sim, "fast", speed=2.0)

    def run(cpu):
        def proc(sim):
            yield from cpu.execute(100.0)
            return sim.now

        return sim.process(proc(sim))

    p1 = run(slow)
    sim.run()
    t_slow = p1.value
    p2 = run(fast)
    sim.run()
    assert t_slow == 100.0
    assert p2.value - t_slow == 50.0  # the fast CPU did it in half the time


def test_processor_rejects_bad_speed():
    with pytest.raises(ValueError):
        Processor(Simulator(), speed=0.0)
    with pytest.raises(ValueError):
        Host(Simulator(), 0, speed=-1.0)


def test_host_speeds_validation():
    with pytest.raises(ConfigurationError):
        World(3, platform="atm", host_speeds=[1.0, 2.0])  # wrong length
    with pytest.raises(ConfigurationError):
        World(2, platform="meiko", host_speeds=[1.0, 1.0])  # meiko: rejected


def test_faster_host_lower_protocol_latency():
    """A faster receiver shaves its kernel processing off the RTT."""

    def rtt(speeds):
        def main(comm):
            if comm.rank == 0:
                t0 = comm.wtime()
                yield from comm.send(b"x", dest=1, tag=1)
                yield from comm.recv(source=1, tag=2)
                return comm.wtime() - t0
            else:
                data, _ = yield from comm.recv(source=0, tag=1)
                yield from comm.send(data, dest=0, tag=2)

        return World(2, platform="atm", device="tcp", host_speeds=speeds).run(main)[0]

    assert rtt([1.0, 2.0]) < rtt([1.0, 1.0])


def test_challenge_finishes_compute_first():
    """With equal work, the Challenge-speed host reaches the barrier
    early and waits for the Indys — classic load imbalance."""

    def main(comm):
        t0 = comm.wtime()
        yield from comm.endpoint.host.compute(10_000.0)
        compute_done = comm.wtime() - t0
        yield from comm.barrier()
        return compute_done

    speeds = [1.0, 1.0, 1.0, 1.5]  # three Indys + one Challenge
    res = World(4, platform="atm", device="tcp", host_speeds=speeds).run(main)
    assert res[3] < res[0]
    assert res[3] == pytest.approx(10_000.0 / 1.5, rel=0.01)


def test_heterogeneous_nbody_still_correct():
    from repro.apps import generate_particles, nbody_ring, reference_forces

    def main(comm):
        f, _ = yield from nbody_ring(comm, nparticles=16, seed=2, flop_time=0.03)
        return f

    res = World(4, platform="atm", device="tcp",
                host_speeds=[1.0, 1.5, 1.0, 1.2]).run(main)
    expected = reference_forces(generate_particles(16, seed=2))
    assert np.allclose(res[0], expected, atol=1e-9)
