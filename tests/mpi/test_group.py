"""Group algebra tests (MPI_Group_*), including property-based checks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.constants import UNDEFINED
from repro.mpi.exceptions import CommunicatorError
from repro.mpi.group import Group

ranks_strategy = st.lists(
    st.integers(min_value=0, max_value=31), min_size=0, max_size=12, unique=True
)


def test_basic_properties():
    g = Group([3, 1, 4])
    assert g.size == 3
    assert g.world_rank(0) == 3
    assert g.rank_of(4) == 2
    assert g.rank_of(9) == UNDEFINED
    assert g.contains(1)
    assert not g.contains(0)


def test_duplicates_rejected():
    with pytest.raises(CommunicatorError):
        Group([1, 1])


def test_negative_rank_rejected():
    with pytest.raises(CommunicatorError):
        Group([-1])


def test_world_rank_bounds():
    g = Group([0, 1])
    with pytest.raises(CommunicatorError):
        g.world_rank(2)
    with pytest.raises(CommunicatorError):
        g.world_rank(-1)


def test_union_preserves_mpi_order():
    a = Group([5, 2])
    b = Group([2, 7, 5, 9])
    assert a.union(b).world_ranks == (5, 2, 7, 9)


def test_intersection_order_of_first():
    a = Group([5, 2, 8])
    b = Group([8, 5])
    assert a.intersection(b).world_ranks == (5, 8)


def test_difference():
    a = Group([1, 2, 3, 4])
    b = Group([2, 4])
    assert a.difference(b).world_ranks == (1, 3)


def test_include_exclude():
    g = Group([10, 11, 12, 13])
    assert g.include([2, 0]).world_ranks == (12, 10)
    assert g.exclude([1, 3]).world_ranks == (10, 12)
    with pytest.raises(CommunicatorError):
        g.exclude([9])


def test_range_include():
    g = Group(list(range(16)))
    assert g.range_include([(0, 6, 2)]).world_ranks == (0, 2, 4, 6)
    assert g.range_include([(6, 0, -3)]).world_ranks == (6, 3, 0)
    with pytest.raises(CommunicatorError):
        g.range_include([(0, 4, 0)])


def test_equality_and_similar():
    assert Group([1, 2]) == Group([1, 2])
    assert Group([1, 2]) != Group([2, 1])
    assert Group([1, 2]).similar(Group([2, 1]))
    assert not Group([1, 2]).similar(Group([1, 3]))


def test_hashable():
    assert len({Group([1, 2]), Group([1, 2]), Group([2, 1])}) == 2


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@given(ranks_strategy, ranks_strategy)
def test_union_contains_both(a, b):
    u = Group(a).union(Group(b))
    assert set(u.world_ranks) == set(a) | set(b)


@given(ranks_strategy, ranks_strategy)
def test_intersection_is_common(a, b):
    i = Group(a).intersection(Group(b))
    assert set(i.world_ranks) == set(a) & set(b)


@given(ranks_strategy, ranks_strategy)
def test_difference_disjoint_from_other(a, b):
    d = Group(a).difference(Group(b))
    assert set(d.world_ranks) == set(a) - set(b)


@given(ranks_strategy)
def test_rank_translation_roundtrip(ranks):
    g = Group(ranks)
    for i in range(g.size):
        assert g.rank_of(g.world_rank(i)) == i
