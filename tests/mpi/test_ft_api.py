"""ULFM fault-tolerance API: detection, ack, revoke, shrink, agree,
and the checkpoint store.

The soak gate (``test_ft_soak.py``) proves end-to-end recovery across
the device matrix; these tests pin the individual API contracts on a
single fast platform.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, NodeCrash
from repro.mpi import World
from repro.mpi.constants import ERR_PROC_FAILED, ERRORS_RETURN
from repro.mpi.exceptions import CommRevoked, MPIError, RankFailed
from repro.mpi.ft import DETECT_DELAY, CheckpointStore, FTConfig


def crash_plan(node, at):
    return FaultPlan.of(NodeCrash(node=node, at=at))


def settle(comm, until):
    """Burn CPU until the simulated clock passes *until* µs."""
    while comm.wtime() < until:
        yield from comm.endpoint.host.compute(50.0)


# ------------------------------------------------------------------ opt-in
def test_ft_api_requires_opt_in():
    def main(comm):
        with pytest.raises(MPIError):
            comm.failure_ack()
        with pytest.raises(MPIError):
            comm.revoke()
        with pytest.raises(MPIError):
            yield from comm.shrink()
        assert not comm.is_revoked()
        yield from comm.barrier()

    World(2, platform="meiko", seed=0).run(main)


def test_ft_config_validates():
    with pytest.raises(ConfigurationError):
        FTConfig(detect_delay=-1.0)


def test_detect_delay_platform_defaults_and_override():
    assert World(2, platform="meiko", ft=True).ft.detect_delay == \
        DETECT_DELAY["meiko"]
    assert World(2, platform="atm", ft=True).ft.detect_delay == \
        DETECT_DELAY["atm"]
    assert World(2, platform="ethernet", ft=True).ft.detect_delay == \
        DETECT_DELAY["ethernet"]
    custom = World(2, platform="meiko", ft=FTConfig(detect_delay=5.0))
    assert custom.ft.detect_delay == 5.0


# --------------------------------------------------------------- detection
def test_detection_names_the_dead_rank_and_gates_wildcards():
    victim, crash_at = 2, 100.0

    def main(comm):
        if comm.rank == victim:
            yield from settle(comm, 100_000.0)
            return "unreachable"
        yield from settle(comm, crash_at + DETECT_DELAY["meiko"] + 50.0)
        # the announcement is global: every survivor sees the same view
        assert comm.world.ft.failed == {victim}
        with pytest.raises(RankFailed) as ei:
            yield from comm.send(b"x", dest=victim, tag=1)
        assert victim in ei.value.failed
        assert ei.value.errcode == ERR_PROC_FAILED
        with pytest.raises(RankFailed):
            yield from comm.recv(source=victim, tag=1)
        # ULFM: wildcard receives refuse to post while failures are
        # unacknowledged (the sender might be the dead rank)
        with pytest.raises(RankFailed):
            yield from comm.recv()
        comm.failure_ack()
        assert list(comm.get_acked().world_ranks) == [victim]
        return "checked"

    world = World(3, platform="meiko", faults=crash_plan(victim, crash_at),
                  ft=True, seed=0)
    res = world.run(main)
    assert res[0] == res[1] == "checked"
    assert res[victim] is None  # the dead rank never returns
    assert world.ft.timeline["crash"] == pytest.approx(crash_at)
    assert world.ft.timeline["detect"] == pytest.approx(
        crash_at + DETECT_DELAY["meiko"])


def test_crash_without_ft_still_deadlocks():
    """The PR 1 semantics are pinned: no FT layer, no detection — peers
    of a crashed rank deadlock and the watchdog reports them."""
    from repro.errors import DeadlockError

    def main(comm):
        if comm.rank == 1:
            yield from settle(comm, 100_000.0)
            return
        yield from comm.recv(source=1, tag=1)

    world = World(2, platform="meiko", faults=crash_plan(1, 50.0), seed=0)
    with pytest.raises(DeadlockError):
        world.run(main)


# -------------------------------------------------------------- revocation
def test_revoke_interrupts_blocked_ranks_everywhere():
    def main(comm):
        if comm.rank == 0:
            yield from settle(comm, 200.0)
            comm.revoke()
            assert comm.is_revoked()
            with pytest.raises(CommRevoked):
                yield from comm.send(b"x", dest=1, tag=1)
            return "revoker"
        try:
            yield from comm.recv(source=0, tag=9)
        except CommRevoked:
            return "revoked"
        return "not revoked"

    world = World(3, platform="meiko", ft=True, seed=0)
    assert world.run(main) == ["revoker", "revoked", "revoked"]


# ----------------------------------------------------------- shrink, agree
def test_shrink_builds_survivors_only_communicator():
    victim = 3

    def main(comm):
        comm.set_errhandler(ERRORS_RETURN)
        if comm.rank == victim:
            yield from settle(comm, 100_000.0)
            return
        yield from settle(comm, 50.0 + DETECT_DELAY["meiko"] + 50.0)
        comm.revoke()
        comm.failure_ack()
        new = yield from comm.shrink()
        assert new.size == 3
        assert list(new.group.world_ranks) == [0, 1, 2]  # rank order kept
        assert new.rank == comm.rank
        assert not new.is_revoked()
        assert new.get_errhandler() == ERRORS_RETURN  # handler inherited
        total = yield from new.allreduce(np.array([float(new.rank + 1)]))
        # agree is the AND of every live member's flag
        agreed = yield from new.agree(new.rank != 1)
        return float(total[0]), agreed

    world = World(4, platform="meiko", faults=crash_plan(victim, 50.0),
                  ft=True, seed=0)
    res = world.run(main)
    assert res[victim] is None
    assert res[:victim] == [(6.0, False)] * 3


def test_agree_unanimous_true():
    def main(comm):
        return (yield from comm.agree(True))

    assert World(3, platform="meiko", ft=True, seed=0).run(main) == [True] * 3


def test_agree_survives_coordinator_death():
    """The agreement coordinator (lowest live rank) dies mid-protocol;
    the survivors re-elect and still decide."""
    victim = 0

    def main(comm):
        if comm.rank == victim:
            yield from settle(comm, 100_000.0)
            return
        yield from settle(comm, 50.0 + DETECT_DELAY["meiko"] + 50.0)
        decided = yield from comm.agree(True)
        return decided

    world = World(3, platform="meiko", faults=crash_plan(victim, 50.0),
                  ft=True, seed=0)
    assert world.run(main) == [None, True, True]


# ------------------------------------------------------------- checkpoints
def test_checkpoint_store_two_phase_commit():
    store = CheckpointStore()
    assert store.latest_committed() is None
    payload = np.arange(4.0)
    store.save(4, 0, (0, payload))
    store.save(4, 1, (2, payload[2:]))
    with pytest.raises(ConfigurationError):
        store.load(4)  # not committed yet
    with pytest.raises(ConfigurationError):
        store.commit(8)  # nothing saved for that step
    store.commit(4)
    store.commit(4)  # idempotent: all ranks commit after the barrier
    assert store.latest_committed() == 4
    payload[0] = 99.0  # saved copies must not alias live buffers
    wave = store.load(4)
    assert wave[0][1][0] == 0.0
    wave[0][1][0] = -1.0  # loaded copies are private too
    assert store.load(4)[0][1][0] == 0.0


def test_checkpoint_store_reusable_across_worlds():
    """FTConfig(store=...) carries committed waves into a new world —
    the checkpoint-restart path for a full job restart."""
    store = CheckpointStore()
    store.save(2, 0, "state")
    store.commit(2)
    world = World(2, platform="meiko", ft=FTConfig(store=store))
    assert world.ft.checkpoints is store
    assert world.ft.checkpoints.latest_committed() == 2


# ------------------------------------------------- recovery events/timeline
def test_recovery_emits_typed_events_in_phase_order():
    from repro.apps import reference_relax, survivable_relax
    from repro.obs import EventBus

    bus = EventBus()
    world = World(4, platform="meiko", faults=crash_plan(2, 900.0),
                  ft=True, obs=bus, seed=1)
    res = world.run(survivable_relax, 64, 12, 4)
    vec, info = res[0]
    assert info["recoveries"] == 1 and info["size"] == 3
    assert np.allclose(vec, reference_relax(64, 12))
    kinds = {e.kind for e in bus.events if e.layer == "ft"}
    assert {"failure.crash", "failure.detect", "comm.revoke", "comm.shrink",
            "agree", "checkpoint.save", "checkpoint.commit",
            "checkpoint.restore"} <= kinds
    tl = world.ft.timeline
    assert tl["crash"] <= tl["detect"] <= tl["revoke"] <= tl["shrink"] \
        <= tl["agree"]
