"""Derived datatypes end to end over MPI: strided columns, structured
records — gathered on the sender, scattered at the receiver."""

import numpy as np
import pytest

from repro.mpi.datatypes import DOUBLE, INT, Indexed, Vector, from_numpy_dtype
from tests.conftest import run_world


def test_send_matrix_column(any_device):
    """Send one strided column of a row-major matrix; receive it into a
    contiguous vector."""
    platform, device = any_device
    rows, cols = 6, 5

    def main(comm):
        coltype = Vector(count=rows, blocklength=1, stride=cols, base=DOUBLE)
        if comm.rank == 0:
            m = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
            # send column 2
            yield from comm.send(m.ravel()[2:], dest=1, tag=1, count=1, datatype=coltype)
        else:
            buf = np.zeros(rows, dtype=np.float64)
            _, status = yield from comm.recv(source=0, tag=1, buf=buf)
            return buf.copy(), status.count_bytes

    res = run_world(2, main, platform, device)
    col, nbytes = res[1]
    expected = np.arange(6 * 5, dtype=np.float64).reshape(6, 5)[:, 2]
    assert np.array_equal(col, expected)
    assert nbytes == rows * 8


def test_receive_into_strided_destination(meiko_device):
    """The receiver scatters a contiguous message into a strided buffer."""
    platform, device = meiko_device
    n = 4

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.array([1.0, 2.0, 3.0, 4.0]), dest=1, tag=1)
        else:
            strided = Vector(count=n, blocklength=1, stride=3, base=DOUBLE)
            buf = np.zeros((n - 1) * 3 + 1, dtype=np.float64)
            yield from comm.recv(source=0, tag=1, buf=buf, count=1, datatype=strided)
            return buf.copy()

    res = run_world(2, main, platform, device)
    assert res[1].tolist() == [1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0, 4.0]


def test_indexed_roundtrip_over_mpi(meiko_device):
    platform, device = meiko_device

    def main(comm):
        t = Indexed([2, 1], [0, 4], INT)
        if comm.rank == 0:
            src = np.arange(8, dtype=np.int32)
            yield from comm.send(src, dest=1, tag=1, count=1, datatype=t)
        else:
            buf = np.full(8, -1, dtype=np.int32)
            yield from comm.recv(source=0, tag=1, buf=buf, count=1, datatype=t)
            return buf.copy()

    res = run_world(2, main, platform, device)
    assert res[1].tolist() == [0, 1, -1, -1, 4, -1, -1, -1]


def test_structured_records_over_mpi(meiko_device):
    """MPI_Type_struct equivalent: NumPy structured dtypes travel whole."""
    platform, device = meiko_device
    particle_t = np.dtype([("pos", np.float64, (3,)), ("mass", np.float64),
                           ("id", np.int32)], align=False)

    def main(comm):
        dtype = from_numpy_dtype(particle_t)
        if comm.rank == 0:
            parts = np.zeros(4, dtype=particle_t)
            parts["pos"] = np.arange(12).reshape(4, 3)
            parts["mass"] = [1.5, 2.5, 3.5, 4.5]
            parts["id"] = [10, 11, 12, 13]
            yield from comm.send(parts, dest=1, tag=1, count=4, datatype=dtype)
        else:
            buf = np.zeros(4, dtype=particle_t)
            _, status = yield from comm.recv(source=0, tag=1, buf=buf, count=4,
                                             datatype=dtype)
            return buf.copy(), status.get_count(dtype)

    res = run_world(2, main, platform, device)
    parts, count = res[1]
    assert count == 4
    assert parts["mass"].tolist() == [1.5, 2.5, 3.5, 4.5]
    assert parts["id"].tolist() == [10, 11, 12, 13]
    assert parts["pos"][3].tolist() == [9.0, 10.0, 11.0]


def test_structured_dtype_inferred(meiko_device):
    """infer_datatype handles structured arrays directly."""
    platform, device = meiko_device
    rec_t = np.dtype([("a", np.int64), ("b", np.float32)])

    def main(comm):
        if comm.rank == 0:
            recs = np.array([(1, 2.0), (3, 4.0)], dtype=rec_t)
            yield from comm.send(recs, dest=1, tag=1)
        else:
            buf = np.zeros(2, dtype=rec_t)
            yield from comm.recv(source=0, tag=1, buf=buf)
            return buf.copy()

    res = run_world(2, main, platform, device)
    assert res[1]["a"].tolist() == [1, 3]
    assert res[1]["b"].tolist() == [2.0, 4.0]


def test_vector_of_structs(meiko_device):
    """A strided type over a structured base: every other record."""
    platform, device = meiko_device
    rec_t = np.dtype([("v", np.float64)])

    def main(comm):
        base = from_numpy_dtype(rec_t)
        every_other = Vector(count=3, blocklength=1, stride=2, base=base)
        if comm.rank == 0:
            recs = np.zeros(6, dtype=rec_t)
            recs["v"] = np.arange(6)
            yield from comm.send(recs, dest=1, tag=1, count=1, datatype=every_other)
        else:
            buf = np.zeros(6, dtype=rec_t)
            yield from comm.recv(source=0, tag=1, buf=buf, count=1, datatype=every_other)
            return buf["v"].tolist()

    res = run_world(2, main, platform, device)
    assert res[1] == [0.0, 0.0, 2.0, 0.0, 4.0, 0.0]
