"""Extension-feature tests: persistent requests, cancel, completion
variants, sendrecv_replace, prefix collectives."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, World
from repro.mpi import collectives as coll
from repro.mpi.exceptions import MPIError
from tests.conftest import run_world


# ---------------------------------------------------------------------------
# persistent requests
# ---------------------------------------------------------------------------


def test_persistent_ring_reuse(meiko_device):
    """A Send_init/Recv_init pair restarted across iterations."""
    platform, device = meiko_device
    iters = 5

    def main(comm):
        other = 1 - comm.rank
        sendbuf = np.zeros(4, dtype=np.float64)
        recvbuf = np.zeros(4, dtype=np.float64)
        sreq = comm.send_init(sendbuf, dest=other, tag=3)
        rreq = comm.recv_init(recvbuf, source=other, tag=3)
        out = []
        for i in range(iters):
            sendbuf[:] = comm.rank * 100 + i
            yield from comm.startall([rreq, sreq])
            yield from comm.waitall([sreq, rreq])
            out.append(recvbuf[0])
        return out

    res = run_world(2, main, platform, device)
    assert res[0] == [100.0 + i for i in range(iters)]
    assert res[1] == [0.0 + i for i in range(iters)]


def test_persistent_inactive_wait_returns_immediately(meiko_device):
    platform, device = meiko_device

    def main(comm):
        req = comm.send_init(b"x", dest=1 - comm.rank, tag=1)
        status = yield from comm.wait(req)  # never started
        return status.count_bytes

    assert run_world(2, main, platform, device) == [0, 0]


def test_persistent_double_start_rejected(meiko_device):
    platform, device = meiko_device

    def main(comm):
        if comm.rank == 0:
            buf = np.zeros(2)
            req = comm.recv_init(buf, source=1, tag=1)
            yield from comm.start(req)
            with pytest.raises(MPIError):
                yield from comm.start(req)
            yield from comm.wait(req)
            return buf[0]
        else:
            yield from comm.send(np.array([7.0, 8.0]), dest=0, tag=1)

    assert run_world(2, main, platform, device)[0] == 7.0


def test_persistent_ssend_mode(meiko_device):
    platform, device = meiko_device
    delay = 3000.0

    def main(comm):
        if comm.rank == 0:
            req = comm.ssend_init(b"sync", dest=1, tag=1)
            t0 = comm.wtime()
            yield from comm.start(req)
            yield from comm.wait(req)
            return comm.wtime() - t0
        else:
            yield comm.endpoint.sim.timeout(delay)
            data, _ = yield from comm.recv(source=0, tag=1)
            return bytes(data)

    res = run_world(2, main, platform, device)
    assert res[0] >= delay * 0.9
    assert res[1] == b"sync"


# ---------------------------------------------------------------------------
# cancel
# ---------------------------------------------------------------------------


def test_cancel_unmatched_recv(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            req = yield from comm.irecv(source=1, tag=99)
            ok = yield from comm.cancel(req)
            assert ok
            status = yield from comm.wait(req)
            assert status.cancelled
            # the channel still works afterwards
            data, _ = yield from comm.recv(source=1, tag=1)
            return bytes(data)
        else:
            yield from comm.send(b"after-cancel", dest=0, tag=1)

    assert run_world(2, main, platform, device)[0] == b"after-cancel"


def test_cancel_matched_recv_fails(meiko_device):
    platform, device = meiko_device

    def main(comm):
        if comm.rank == 0:
            req = yield from comm.irecv(source=1, tag=1)
            yield from comm.wait(req)  # delivery happens
            ok = yield from comm.cancel(req)
            return ok
        else:
            yield from comm.send(b"x", dest=0, tag=1)

    assert run_world(2, main, platform, device)[0] is False


def test_cancel_send_rejected(meiko_device):
    platform, device = meiko_device

    def main(comm):
        if comm.rank == 0:
            req = yield from comm.isend(b"x", dest=1, tag=1)
            with pytest.raises(MPIError):
                yield from comm.cancel(req)
            yield from comm.wait(req)
        else:
            yield from comm.recv(source=0, tag=1)

    run_world(2, main, platform, device)


def test_cancelled_recv_does_not_steal_message(meiko_device):
    """A message sent after the cancel must match a *new* receive."""
    platform, device = meiko_device

    def main(comm):
        if comm.rank == 0:
            req = yield from comm.irecv(source=1, tag=5)
            yield from comm.cancel(req)
            yield from comm.send(b"go", dest=1, tag=0)  # unblock the sender
            data, _ = yield from comm.recv(source=1, tag=5)
            return bytes(data)
        else:
            yield from comm.recv(source=0, tag=0)
            yield from comm.send(b"fresh", dest=0, tag=5)

    assert run_world(2, main, platform, device)[0] == b"fresh"


# ---------------------------------------------------------------------------
# completion variants
# ---------------------------------------------------------------------------


def test_waitsome(meiko_device):
    platform, device = meiko_device

    def main(comm):
        if comm.rank == 0:
            r1 = yield from comm.irecv(source=1, tag=1)
            r2 = yield from comm.irecv(source=1, tag=2)
            r3 = yield from comm.irecv(source=1, tag=3)
            indices, statuses = yield from comm.waitsome([r1, r2, r3])
            # tags 1 and 2 were sent promptly, tag 3 much later
            yield from comm.waitall([r3])
            return sorted(indices)
        else:
            yield from comm.send(b"a", dest=0, tag=1)
            yield from comm.send(b"b", dest=0, tag=2)
            yield comm.endpoint.sim.timeout(50_000.0)
            yield from comm.send(b"c", dest=0, tag=3)

    got = run_world(2, main, platform, device)[0]
    assert got and set(got) <= {0, 1}


def test_testall_testany(meiko_device):
    platform, device = meiko_device

    def main(comm):
        if comm.rank == 0:
            r1 = yield from comm.irecv(source=1, tag=1)
            r2 = yield from comm.irecv(source=1, tag=2)
            flag, _ = yield from comm.testall([r1, r2])
            assert not flag  # nothing sent yet
            yield from comm.send(b"", dest=1, tag=0)
            # after the first message only, testany finds one
            found = False
            while not found:
                found, idx, status = yield from comm.testany([r1, r2])
                yield comm.endpoint.sim.timeout(20.0)
            assert idx == 0 and status.tag == 1
            yield from comm.waitall([r2])
            flag, statuses = yield from comm.testall([r1, r2])
            assert flag and [s.tag for s in statuses] == [1, 2]
            return True
        else:
            yield from comm.recv(source=0, tag=0)
            yield from comm.send(b"x", dest=0, tag=1)
            yield comm.endpoint.sim.timeout(5_000.0)
            yield from comm.send(b"y", dest=0, tag=2)

    assert run_world(2, main, platform, device)[0] is True


def test_sendrecv_replace(any_device):
    platform, device = any_device

    def main(comm):
        other = 1 - comm.rank
        buf = np.full(4, float(comm.rank))
        status = yield from comm.sendrecv_replace(buf, dest=other, source=other,
                                                  sendtag=1, recvtag=1)
        return buf.copy(), status.source

    res = run_world(2, main, platform, device)
    assert np.all(res[0][0] == 1.0) and res[0][1] == 1
    assert np.all(res[1][0] == 0.0) and res[1][1] == 0


# ---------------------------------------------------------------------------
# prefix collectives
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", [1, 2, 5])
def test_scan(meiko_device, nprocs):
    platform, device = meiko_device

    def main(comm):
        local = np.array([float(comm.rank + 1)])
        result = yield from comm.scan(local)
        return float(result[0])

    res = run_world(nprocs, main, platform, device)
    assert res == [sum(range(1, r + 2)) for r in range(nprocs)]


def test_exscan(meiko_device):
    platform, device = meiko_device

    def main(comm):
        local = np.array([float(comm.rank + 1)])
        result = yield from comm.exscan(local)
        return None if result is None else float(result[0])

    res = run_world(4, main, platform, device)
    assert res == [None, 1.0, 3.0, 6.0]


def test_scan_prod(meiko_device):
    platform, device = meiko_device

    def main(comm):
        local = np.array([2.0])
        result = yield from comm.scan(local, op=coll.PROD)
        return float(result[0])

    assert run_world(3, main, platform, device) == [2.0, 4.0, 8.0]


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_reduce_scatter(meiko_device, nprocs):
    platform, device = meiko_device

    def main(comm):
        # every rank contributes [rank, rank, ...] over size blocks of 2
        local = np.full(comm.size * 2, float(comm.rank))
        mine = yield from comm.reduce_scatter(local)
        return mine.tolist()

    res = run_world(nprocs, main, platform, device)
    total = float(sum(range(nprocs)))
    for r in res:
        assert r == [total, total]


def test_reduce_scatter_indivisible_rejected(meiko_device):
    platform, device = meiko_device

    def main(comm):
        with pytest.raises(MPIError):
            yield from comm.reduce_scatter(np.zeros(3))
        yield from comm.barrier()

    run_world(2, main, platform, device)


# ---------------------------------------------------------------------------
# dynamic connection setup (handshake mesh)
# ---------------------------------------------------------------------------


def test_handshake_mesh_delivers_everything():
    """The dynamically connected mesh behaves identically to the static
    one (messages queued during setup drain in order)."""
    from repro.mpi.device.cluster import ClusterConfig

    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        out = []
        for i in range(4):
            req = yield from comm.isend(bytes([comm.rank, i]) * 30, dest=right, tag=i)
            data, _ = yield from comm.recv(source=left, tag=i)
            yield from comm.wait(req)
            out.append(bytes(data))
        return out

    res = run_world(4, main, "atm", "tcp",
                    device_config=ClusterConfig(handshake=True))
    for rank in range(4):
        left = (rank - 1) % 4
        assert res[rank] == [bytes([left, i]) * 30 for i in range(4)]


def test_handshake_costs_show_on_first_message():
    """Dynamic setup pays the 3-way handshake on the first exchange —
    the cost the paper's static connections avoid."""
    from repro.mpi.device.cluster import ClusterConfig

    def main(comm):
        if comm.rank == 0:
            t0 = comm.wtime()
            yield from comm.send(b"x", dest=1, tag=1)
            yield from comm.recv(source=1, tag=2)
            first = comm.wtime() - t0
            t0 = comm.wtime()
            yield from comm.send(b"x", dest=1, tag=1)
            yield from comm.recv(source=1, tag=2)
            return first, comm.wtime() - t0
        else:
            for _ in range(2):
                data, _ = yield from comm.recv(source=0, tag=1)
                yield from comm.send(data, dest=0, tag=2)

    static = run_world(2, main, "atm", "tcp")[0]
    dynamic = run_world(2, main, "atm", "tcp",
                        device_config=ClusterConfig(handshake=True))[0]
    assert dynamic[0] > static[0] + 300.0  # handshake on the first RTT
    assert abs(dynamic[1] - static[1]) < 50.0  # steady state identical
