"""Non-overtaking order of wildcard receives under packet faults.

MPI guarantees that two messages from the same sender on the same
(communicator, tag) are received in the order they were sent, even
when the receive side matches with MPI_ANY_SOURCE or MPI_ANY_TAG.
On the cluster fabrics the reliability layer (TCP, or RUDP over UDP)
must preserve that order through packet loss and duplication — a
retransmitted or duplicated datagram must not let a later message
overtake an earlier one.
"""

import pytest

from repro.faults import FaultPlan, PacketDuplication, PacketLoss
from repro.mpi import World
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.net.kernel import KernelParams

LOSSY_KP = KernelParams().with_overrides(rto=8_000.0)

FAULT_KINDS = {
    "drop": FaultPlan.of(PacketLoss(probability=0.15)),
    "duplicate": FaultPlan.of(PacketDuplication(probability=0.15)),
    "drop+duplicate": FaultPlan.of(
        PacketLoss(probability=0.1), PacketDuplication(probability=0.1)
    ),
}


def _run(nprocs, main, platform, device, plan, seed):
    world = World(
        nprocs,
        platform=platform,
        device=device,
        faults=plan,
        seed=seed,
        kernel_params=LOSSY_KP,
    )
    return world.run(main)


@pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_any_source_preserves_per_sender_order(cluster_device, kind, seed):
    """ANY_SOURCE receives see each sender's messages in send order."""
    platform, device = cluster_device
    plan = FAULT_KINDS[kind]
    per_sender = 6

    def main(comm):
        if comm.rank == 0:
            seen = {1: [], 2: []}
            for _ in range(2 * per_sender):
                data, st = yield from comm.recv(source=ANY_SOURCE, tag=7)
                seen[st.source].append(data[0])
            return seen
        for i in range(per_sender):
            yield from comm.send(bytes([i]), dest=0, tag=7)
        return None

    seen = _run(3, main, platform, device, plan, seed)[0]
    assert seen[1] == list(range(per_sender))
    assert seen[2] == list(range(per_sender))


@pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
@pytest.mark.parametrize("seed", [1, 2])
def test_any_tag_preserves_send_order(cluster_device, kind, seed):
    """ANY_TAG receives from one sender arrive in send order with the
    actual tags reported in Status."""
    platform, device = cluster_device
    plan = FAULT_KINDS[kind]
    n = 8

    def main(comm):
        if comm.rank == 0:
            got = []
            for _ in range(n):
                data, st = yield from comm.recv(source=1, tag=ANY_TAG)
                got.append((st.tag, data[0]))
            return got
        for i in range(n):
            yield from comm.send(bytes([i]), dest=0, tag=10 + i)
        return None

    got = _run(2, main, platform, device, plan, seed)[0]
    assert got == [(10 + i, i) for i in range(n)]


@pytest.mark.parametrize("kind", ["drop", "duplicate"])
def test_duplicates_are_not_delivered_twice(cluster_device, kind):
    """Exactly one receive completes per send: a duplicated datagram
    must not produce an extra message, a dropped one must reappear."""
    platform, device = cluster_device
    plan = FAULT_KINDS[kind]
    seed = 99
    n = 5

    def main(comm):
        if comm.rank == 0:
            msgs = []
            for _ in range(n):
                data, st = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                msgs.append(bytes(data))
            # no extra message may be in flight: a probe finds nothing
            flag, _ = yield from comm.iprobe(source=ANY_SOURCE, tag=ANY_TAG)
            return msgs, flag
        for i in range(n):
            yield from comm.send(b"m%d" % i, dest=0, tag=4)
        return None

    msgs, leftover = _run(2, main, platform, device, plan, seed)[0]
    assert msgs == [b"m%d" % i for i in range(n)]
    assert leftover is False


@pytest.mark.parametrize("seed", [11, 12])
def test_same_tag_fifo_under_faults(cluster_device, seed):
    """The conformance fuzzer's FIFO stress: repeated sends on one
    (source, tag) pair drained by explicit receives stay in order."""
    platform, device = cluster_device
    plan = FAULT_KINDS["drop+duplicate"]
    reps = 10

    def main(comm):
        if comm.rank == 0:
            out = []
            for _ in range(reps):
                data, _ = yield from comm.recv(source=1, tag=3)
                out.append(data[0])
            return out
        for i in range(reps):
            yield from comm.send(bytes([i]), dest=0, tag=3)
        return None

    assert _run(2, main, platform, device, plan, seed)[0] == list(range(reps))
