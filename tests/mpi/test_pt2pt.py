"""Point-to-point semantics, parametrized over every device.

Every test runs on the low-latency Meiko device (SPARC matching), the
MPICH/tport device (Elan matching), and the TCP/UDP cluster devices on
both fabrics — the semantics must be identical even though the
protocols differ completely.
"""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, PROC_NULL, World
from repro.mpi.exceptions import BufferError_, MPIError, TruncationError
from tests.mpi.conftest import run_world


# ---------------------------------------------------------------------------
# basic delivery
# ---------------------------------------------------------------------------


def test_send_recv_bytes(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"payload", dest=1, tag=3)
        else:
            data, status = yield from comm.recv(source=0, tag=3)
            return (bytes(data), status.source, status.tag, status.count_bytes)

    res = run_world(2, main, platform, device)
    assert res[1] == (b"payload", 0, 3, 7)


def test_send_recv_numpy_array(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.arange(16, dtype=np.float64), dest=1)
        else:
            buf = np.zeros(16, dtype=np.float64)
            _, status = yield from comm.recv(source=0, buf=buf)
            return buf.copy(), status.count_bytes

    res = run_world(2, main, platform, device)
    buf, nbytes = res[1]
    assert np.array_equal(buf, np.arange(16, dtype=np.float64))
    assert nbytes == 128


@pytest.mark.parametrize("nbytes", [0, 1, 179, 180, 181, 200, 4096, 65536])
def test_all_protocol_sizes(any_device, nbytes):
    """Delivery is correct across the eager/rendezvous boundary."""
    platform, device = any_device
    payload = bytes(range(256)) * (nbytes // 256 + 1)
    payload = payload[:nbytes]

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(payload, dest=1, tag=1)
        else:
            data, status = yield from comm.recv(source=0, tag=1)
            return bytes(data)

    assert run_world(2, main, platform, device)[1] == payload


def test_any_source(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 2:
            seen = set()
            for _ in range(2):
                data, status = yield from comm.recv(source=ANY_SOURCE, tag=1)
                seen.add((status.source, bytes(data)))
            return seen
        else:
            yield from comm.send(bytes([comm.rank]), dest=2, tag=1)

    res = run_world(3, main, platform, device)
    assert res[2] == {(0, b"\x00"), (1, b"\x01")}


def test_any_tag_reports_actual(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"a", dest=1, tag=42)
        else:
            data, status = yield from comm.recv(source=0, tag=ANY_TAG)
            return status.tag

    assert run_world(2, main, platform, device)[1] == 42


def test_tag_selectivity(any_device):
    """A tagged receive must skip an earlier message with another tag."""
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"first", dest=1, tag=1)
            yield from comm.send(b"second", dest=1, tag=2)
        else:
            d2, _ = yield from comm.recv(source=0, tag=2)
            d1, _ = yield from comm.recv(source=0, tag=1)
            return (bytes(d1), bytes(d2))

    assert run_world(2, main, platform, device)[1] == (b"first", b"second")


def test_nonovertaking_same_tag(any_device):
    """Messages with identical envelopes arrive in send order."""
    platform, device = any_device
    N = 12

    def main(comm):
        if comm.rank == 0:
            for i in range(N):
                yield from comm.send(bytes([i]), dest=1, tag=1)
        else:
            out = []
            for _ in range(N):
                data, _ = yield from comm.recv(source=0, tag=1)
                out.append(data[0])
            return out

    assert run_world(2, main, platform, device)[1] == list(range(N))


def test_nonovertaking_across_protocols(any_device):
    """Eager and rendezvous messages from one sender must not overtake."""
    platform, device = any_device
    sizes = [10, 5000, 20, 9000, 1]  # alternating eager / rendezvous

    def main(comm):
        if comm.rank == 0:
            for i, n in enumerate(sizes):
                yield from comm.send(bytes([i]) * n, dest=1, tag=7)
        else:
            out = []
            for n in sizes:
                data, st = yield from comm.recv(source=0, tag=7)
                out.append((st.count_bytes, data[0]))
            return out

    expected = [(n, i) for i, n in enumerate(sizes)]
    assert run_world(2, main, platform, device)[1] == expected


def test_unexpected_messages_buffered(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"early", dest=1, tag=1)
        else:
            # let the message arrive long before the receive is posted
            yield comm.endpoint.sim.timeout(2000.0)
            data, _ = yield from comm.recv(source=0, tag=1)
            return bytes(data)

    assert run_world(2, main, platform, device)[1] == b"early"


def test_bidirectional_simultaneous(any_device):
    """Head-to-head sends must not deadlock (eager buffering)."""
    platform, device = any_device

    def main(comm):
        other = 1 - comm.rank
        yield from comm.send(bytes([comm.rank]), dest=other, tag=1)
        data, _ = yield from comm.recv(source=other, tag=1)
        return data[0]

    assert run_world(2, main, platform, device) == [1, 0]


# ---------------------------------------------------------------------------
# nonblocking operations
# ---------------------------------------------------------------------------


def test_isend_irecv_waitall(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            reqs = []
            for i in range(4):
                r = yield from comm.isend(bytes([i]) * 8, dest=1, tag=i)
                reqs.append(r)
            yield from comm.waitall(reqs)
        else:
            reqs = []
            for i in range(4):
                r = yield from comm.irecv(source=0, tag=i)
                reqs.append(r)
            statuses = yield from comm.waitall(reqs)
            return [(r.data[0], s.tag) for r, s in zip(reqs, statuses)]

    assert run_world(2, main, platform, device)[1] == [(i, i) for i in range(4)]


def test_waitany_returns_a_completed_one(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield comm.endpoint.sim.timeout(500.0)
            yield from comm.send(b"late", dest=1, tag=2)
        elif comm.rank == 2:
            yield from comm.send(b"soon", dest=1, tag=1)
        else:
            r1 = yield from comm.irecv(source=0, tag=2)
            r2 = yield from comm.irecv(source=2, tag=1)
            idx, status = yield from comm.waitany([r1, r2])
            return (idx, status.source)

    res = run_world(3, main, platform, device)
    assert res[1] == (1, 2)  # the early sender completes first


def test_test_polls_without_blocking(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield comm.endpoint.sim.timeout(300.0)
            yield from comm.send(b"x", dest=1, tag=1)
        else:
            req = yield from comm.irecv(source=0, tag=1)
            flag, _ = yield from comm.test(req)
            polls = 0
            while not flag:
                polls += 1
                yield comm.endpoint.sim.timeout(50.0)
                flag, status = yield from comm.test(req)
            return polls > 0

    assert run_world(2, main, platform, device)[1] is True


def test_sendrecv(any_device):
    platform, device = any_device

    def main(comm):
        other = 1 - comm.rank
        data, status = yield from comm.sendrecv(
            bytes([comm.rank]) * 4, dest=other, source=other, sendtag=1, recvtag=1
        )
        return data[0]

    assert run_world(2, main, platform, device) == [1, 0]


# ---------------------------------------------------------------------------
# send modes
# ---------------------------------------------------------------------------


def test_ssend_completes_only_after_match(any_device):
    """MPI_Ssend must not complete before the receive is posted."""
    platform, device = any_device
    post_delay = 3000.0

    def main(comm):
        if comm.rank == 0:
            t0 = comm.wtime()
            yield from comm.ssend(b"sync", dest=1, tag=1)
            return comm.wtime() - t0
        else:
            yield comm.endpoint.sim.timeout(post_delay)
            data, _ = yield from comm.recv(source=0, tag=1)
            return bytes(data)

    res = run_world(2, main, platform, device)
    assert res[0] >= post_delay * 0.9  # sender waited for the match
    assert res[1] == b"sync"


def test_standard_send_small_completes_before_match(any_device):
    """A small standard send is buffered: it completes long before the
    receive is posted (the eager path the paper optimizes)."""
    platform, device = any_device
    post_delay = 5000.0

    def main(comm):
        if comm.rank == 0:
            t0 = comm.wtime()
            yield from comm.send(b"eager", dest=1, tag=1)
            return comm.wtime() - t0
        else:
            yield comm.endpoint.sim.timeout(post_delay)
            data, _ = yield from comm.recv(source=0, tag=1)

    res = run_world(2, main, platform, device)
    assert res[0] < post_delay / 2


def test_ssend_large_rendezvous(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield from comm.ssend(bytes(10000), dest=1, tag=1)
        else:
            data, st = yield from comm.recv(source=0, tag=1)
            return st.count_bytes

    assert run_world(2, main, platform, device)[1] == 10000


def test_bsend_requires_attached_buffer(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            with pytest.raises(BufferError_):
                yield from comm.bsend(b"x" * 64, dest=1, tag=1)
            yield from comm.send(b"done", dest=1, tag=2)
        else:
            yield from comm.recv(source=0, tag=2)

    run_world(2, main, platform, device)


def test_bsend_completes_locally(any_device):
    platform, device = any_device
    post_delay = 5000.0

    def main(comm):
        if comm.rank == 0:
            comm.buffer_attach(4096)
            t0 = comm.wtime()
            yield from comm.bsend(bytes(1000), dest=1, tag=1)
            elapsed = comm.wtime() - t0
            return elapsed
        else:
            yield comm.endpoint.sim.timeout(post_delay)
            data, st = yield from comm.recv(source=0, tag=1)
            return st.count_bytes

    res = run_world(2, main, platform, device)
    assert res[0] < post_delay / 2  # completed locally
    assert res[1] == 1000


def test_bsend_buffer_exhaustion(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            comm.buffer_attach(100)
            with pytest.raises(BufferError_):
                yield from comm.bsend(bytes(200), dest=1, tag=1)
            yield from comm.send(b"done", dest=1, tag=2)
        else:
            yield from comm.recv(source=0, tag=2)

    run_world(2, main, platform, device)


def test_rsend_with_posted_receive(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            # wait long enough that the receive is certainly posted
            yield comm.endpoint.sim.timeout(1000.0)
            yield from comm.rsend(b"ready", dest=1, tag=1)
        else:
            data, _ = yield from comm.recv(source=0, tag=1)
            return bytes(data)

    assert run_world(2, main, platform, device)[1] == b"ready"


def test_truncation_error(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(bytes(64), dest=1, tag=1)
        else:
            buf = np.zeros(4, dtype=np.uint8)  # too small
            with pytest.raises(TruncationError):
                yield from comm.recv(source=0, tag=1, buf=buf)

    run_world(2, main, platform, device)


# ---------------------------------------------------------------------------
# probe
# ---------------------------------------------------------------------------


def test_probe_then_recv(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(bytes(37), dest=1, tag=9)
        else:
            status = yield from comm.probe(source=0, tag=9)
            data, _ = yield from comm.recv(source=status.source, tag=status.tag)
            return (status.count_bytes, len(data))

    assert run_world(2, main, platform, device)[1] == (37, 37)


def test_iprobe_no_message(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 1:
            flag, status = yield from comm.iprobe(source=0, tag=1)
            assert not flag and status is None
            yield from comm.recv(source=0, tag=2)
        else:
            yield from comm.send(b"x", dest=1, tag=2)

    run_world(2, main, platform, device)


def test_iprobe_sees_pending(any_device):
    platform, device = any_device

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"abc", dest=1, tag=5)
        else:
            yield comm.endpoint.sim.timeout(2000.0)
            flag, status = yield from comm.iprobe(source=ANY_SOURCE, tag=ANY_TAG)
            assert flag
            data, _ = yield from comm.recv(source=status.source, tag=status.tag)
            return (status.source, status.tag, status.count_bytes)

    assert run_world(2, main, platform, device)[1] == (0, 5, 3)


# ---------------------------------------------------------------------------
# PROC_NULL / validation
# ---------------------------------------------------------------------------


def test_proc_null_send_recv(any_device):
    platform, device = any_device

    def main(comm):
        yield from comm.send(b"void", dest=PROC_NULL, tag=1)
        data, status = yield from comm.recv(source=PROC_NULL, tag=1)
        return (data, status.source, status.count_bytes)

    res = run_world(1, main, platform, device)
    assert res[0] == (None, PROC_NULL, 0)


def test_invalid_ranks_rejected(any_device):
    platform, device = any_device

    def main(comm):
        from repro.mpi.exceptions import CommunicatorError

        with pytest.raises(CommunicatorError):
            yield from comm.send(b"x", dest=5, tag=1)
        with pytest.raises(CommunicatorError):
            yield from comm.recv(source=-7, tag=1)
        with pytest.raises(MPIError):
            yield from comm.send(b"x", dest=1, tag=-2)
        yield from comm.send(b"fin", dest=1 - comm.rank, tag=0)
        yield from comm.recv(source=1 - comm.rank, tag=0)

    run_world(2, main, platform, device)


def test_flow_control_slot_reuse(any_device):
    """Many rapid sends to one receiver (single envelope slot on the
    low-latency device; tport buffering on MPICH) all arrive in order."""
    platform, device = any_device
    N = 20

    def main(comm):
        if comm.rank == 0:
            reqs = []
            for i in range(N):
                r = yield from comm.isend(bytes([i]) * 16, dest=1, tag=1)
                reqs.append(r)
            yield from comm.waitall(reqs)
        else:
            yield comm.endpoint.sim.timeout(1000.0)
            out = []
            for _ in range(N):
                data, _ = yield from comm.recv(source=0, tag=1)
                out.append(data[0])
            return out

    assert run_world(2, main, platform, device)[1] == list(range(N))


def test_many_to_one_fan_in(any_device):
    platform, device = any_device
    P = 6

    def main(comm):
        if comm.rank == 0:
            total = 0
            for _ in range(P - 1):
                data, st = yield from comm.recv(source=ANY_SOURCE, tag=1)
                total += data[0]
            return total
        else:
            yield from comm.send(bytes([comm.rank]), dest=0, tag=1)

    assert run_world(P, main, platform, device)[0] == sum(range(1, P))
