"""Negative paths and misuse: the library must fail loudly and precisely."""

import numpy as np
import pytest

from repro.mpi import World
from repro.mpi.exceptions import (
    CommunicatorError,
    MPIError,
    ReadyModeError,
    ResourceExhausted,
)
from tests.conftest import run_world


def test_reduce_requires_array():
    def main(comm):
        with pytest.raises(MPIError):
            yield from comm.reduce(b"bytes-not-array")
        yield from comm.barrier()

    run_world(2, main)


def test_scan_requires_array():
    def main(comm):
        with pytest.raises(MPIError):
            yield from comm.scan([1, 2, 3])
        yield from comm.barrier()

    run_world(2, main)


def test_bcast_bad_root():
    def main(comm):
        with pytest.raises(CommunicatorError):
            yield from comm.bcast(np.zeros(2), root=9)
        yield from comm.barrier()

    run_world(2, main)


def test_recv_without_buffer_or_datatype_on_send():
    def main(comm):
        with pytest.raises(MPIError):
            yield from comm.isend(None, dest=0, tag=1)
        yield comm.endpoint.sim.timeout(0)

    run_world(1, main)


def _rsend_violation_main(comm):
    """Rank 0 rsends with nothing posted; rank 1 processes the arrival
    from inside an *unrelated* receive — with main-processor matching
    the violation only becomes observable when the receiver enters the
    library, which is exactly what this drives."""
    if comm.rank == 0:
        yield from comm.rsend(b"too-early", dest=1, tag=1)
        yield from comm.send(b"unblock", dest=1, tag=9)
    else:
        data, _ = yield from comm.recv(source=0, tag=9)
        yield from comm.recv(source=0, tag=1)


@pytest.mark.parametrize("platform,device", [("meiko", "lowlatency"), ("atm", "tcp")])
def test_ready_mode_violation_raises(platform, device):
    """An rsend with no posted receive is an erroneous program; the
    strict default surfaces it (MPICH/tport cannot observe modes and is
    exempt, like the real port)."""
    with pytest.raises(ReadyModeError):
        run_world(2, _rsend_violation_main, platform, device)


def test_ready_mode_lenient_counts():
    from repro.mpi.device.lowlatency import LowLatencyConfig

    cfg = LowLatencyConfig(strict_ready=False)

    def main(comm):
        if comm.rank == 0:
            yield from comm.rsend(b"early", dest=1, tag=1)
            yield from comm.send(b"unblock", dest=1, tag=9)
        else:
            yield from comm.recv(source=0, tag=9)  # processes the rsend arrival
            data, _ = yield from comm.recv(source=0, tag=1)
            return (bytes(data), comm.endpoint.ready_violations)

    res = run_world(2, main, "meiko", "lowlatency", device_config=cfg)
    assert res[1] == (b"early", 1)


def test_unexpected_queue_overflow():
    """Envelope resources are finite (Burns & Daoud): flooding a
    receiver whose posted receive never matches raises
    ResourceExhausted instead of deadlocking silently."""
    from repro.mpi.device.lowlatency import LowLatencyConfig

    cfg = LowLatencyConfig(max_unexpected=4)

    def main(comm):
        if comm.rank == 0:
            for i in range(10):
                yield from comm.send(bytes([i]), dest=1, tag=i)
        else:
            # blocked in a receive that never matches: the progress loop
            # keeps draining arrivals into the unexpected queue
            yield from comm.recv(source=0, tag=999)

    with pytest.raises(ResourceExhausted):
        run_world(2, main, "meiko", "lowlatency", device_config=cfg)


def test_split_color_must_match_types():
    def main(comm):
        sub = yield from comm.split(comm.rank % 2, key=0)
        return sub.size

    assert run_world(4, main) == [2, 2, 2, 2]


def test_group_membership_enforced():
    """Building a communicator for a group the endpoint is not in fails."""
    from repro.mpi import Communicator, Group

    w = World(3)
    with pytest.raises(CommunicatorError):
        Communicator(w, Group([0, 1]), 99, w.endpoints[2])


def test_determinism_across_stack_changes():
    """The same seeded world gives byte-identical timing twice, even on
    the contention-prone Ethernet."""

    def main(comm):
        other = 1 - comm.rank
        for i in range(5):
            if comm.rank == 0:
                yield from comm.send(bytes(200), dest=other, tag=i)
                yield from comm.recv(source=other, tag=i)
            else:
                yield from comm.recv(source=other, tag=i)
                yield from comm.send(bytes(200), dest=other, tag=i)
        return comm.wtime()

    a = World(2, platform="ethernet", device="tcp", seed=11).run(main)
    b = World(2, platform="ethernet", device="tcp", seed=11).run(main)
    c = World(2, platform="ethernet", device="tcp", seed=12).run(main)
    assert a == b
    # a different seed changes backoff jitter somewhere in the run
    assert a != c or True  # (jitter may not trigger; equality is allowed)
