"""Matching-engine unit tests: MPI matching rules and ordering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, INTERNAL_TAG_BASE
from repro.mpi.envelope import Envelope
from repro.mpi.exceptions import ResourceExhausted
from repro.mpi.matching import Arrival, MatchQueues
from repro.mpi.request import Request


class FakeComm:
    def __init__(self, context_id=0):
        self.context_id = context_id


def recv_req(source=ANY_SOURCE, tag=ANY_TAG, context=0):
    return Request("recv", FakeComm(context), None, 0, None, source, tag)


def arrival(src=0, tag=0, context=0, nbytes=4, data=b"\x00" * 4, seq=0):
    return Arrival(Envelope(src=src, tag=tag, context=context, nbytes=nbytes, seq=seq), data=data)


def test_post_then_arrive_matches():
    q = MatchQueues()
    req = recv_req(source=1, tag=5)
    assert q.post(req) == (None, 0)
    matched, comps = q.arrive(arrival(src=1, tag=5))
    assert matched is req
    assert comps == 1
    assert not q.posted and not q.unexpected


def test_arrive_then_post_matches():
    q = MatchQueues()
    arr = arrival(src=1, tag=5)
    assert q.arrive(arr) == (None, 0)
    matched, comps = q.post(recv_req(source=1, tag=5))
    assert matched is arr


def test_any_source_any_tag():
    q = MatchQueues()
    req = recv_req()
    q.post(req)
    matched, _ = q.arrive(arrival(src=3, tag=99))
    assert matched is req


def test_wrong_tag_does_not_match():
    q = MatchQueues()
    q.post(recv_req(tag=5))
    matched, _ = q.arrive(arrival(tag=6))
    assert matched is None
    assert len(q.unexpected) == 1


def test_wrong_source_does_not_match():
    q = MatchQueues()
    q.post(recv_req(source=1, tag=ANY_TAG))
    matched, _ = q.arrive(arrival(src=2))
    assert matched is None


def test_context_isolation():
    q = MatchQueues()
    q.post(recv_req(context=1))
    matched, _ = q.arrive(arrival(context=2))
    assert matched is None


def test_wildcard_does_not_match_internal_tags():
    """User ANY_TAG receives must not steal collective traffic."""
    q = MatchQueues()
    q.post(recv_req(tag=ANY_TAG))
    matched, _ = q.arrive(arrival(tag=INTERNAL_TAG_BASE + 1))
    assert matched is None
    # but an exact internal-tag receive does match
    matched, _ = q.post(recv_req(tag=INTERNAL_TAG_BASE + 1))
    assert matched is not None


def test_fifo_unexpected_order_same_sender():
    """Non-overtaking: the oldest compatible unexpected message wins."""
    q = MatchQueues()
    a1 = arrival(src=0, tag=7, seq=0, data=b"one!")
    a2 = arrival(src=0, tag=7, seq=1, data=b"two!")
    q.arrive(a1)
    q.arrive(a2)
    matched, _ = q.post(recv_req(source=0, tag=7))
    assert matched is a1
    matched, _ = q.post(recv_req(source=0, tag=7))
    assert matched is a2


def test_fifo_posted_order():
    """The oldest compatible posted receive wins."""
    q = MatchQueues()
    r1 = recv_req(tag=ANY_TAG)
    r2 = recv_req(tag=ANY_TAG)
    q.post(r1)
    q.post(r2)
    matched, _ = q.arrive(arrival())
    assert matched is r1


def test_tagged_receive_skips_earlier_nonmatching():
    q = MatchQueues()
    q.arrive(arrival(tag=1, data=b"aaaa"))
    q.arrive(arrival(tag=2, data=b"bbbb"))
    matched, comps = q.post(recv_req(tag=2))
    assert matched.data == b"bbbb"
    assert comps == 2


def test_probe_non_consuming():
    q = MatchQueues()
    q.arrive(arrival(src=1, tag=3))
    hit = q.probe(1, 3, 0)
    assert hit is not None
    assert len(q.unexpected) == 1
    assert q.probe(1, 4, 0) is None
    assert q.probe(2, 3, 0) is None
    assert q.probe(ANY_SOURCE, ANY_TAG, 0) is not None


def test_cancel_post():
    q = MatchQueues()
    req = recv_req()
    q.post(req)
    assert q.cancel_post(req)
    assert not q.cancel_post(req)
    matched, _ = q.arrive(arrival())
    assert matched is None


def test_unexpected_overflow_raises():
    q = MatchQueues(max_unexpected=2)
    q.arrive(arrival(tag=1))
    q.arrive(arrival(tag=2))
    with pytest.raises(ResourceExhausted):
        q.arrive(arrival(tag=3))


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=30))
def test_property_matched_pairs_are_compatible(messages):
    """Whatever arrives, every match pairs a compatible (source, tag)."""
    q = MatchQueues()
    matches = []
    for i, (src, tag) in enumerate(messages):
        if i % 2 == 0:
            req = recv_req(source=src if src != 3 else ANY_SOURCE, tag=tag if tag != 3 else ANY_TAG)
            arr, _ = q.post(req)
            if arr:
                matches.append((req, arr))
        else:
            arr = arrival(src=src, tag=tag, seq=i)
            r, _ = q.arrive(arr)
            if r:
                matches.append((r, arr))
    for req, arr in matches:
        env = arr.envelope
        assert req.peer in (ANY_SOURCE, env.src)
        assert req.tag in (ANY_TAG, env.tag)


@given(st.integers(2, 20))
def test_property_same_key_messages_match_in_seq_order(n):
    """For identical (src, tag), matched sequence numbers are increasing."""
    q = MatchQueues()
    for i in range(n):
        q.arrive(arrival(src=0, tag=1, seq=i))
    seqs = []
    for _ in range(n):
        m, _ = q.post(recv_req(source=0, tag=1))
        seqs.append(m.envelope.seq)
    assert seqs == sorted(seqs)
