"""Datatype tests: basic types, derived types, pack/unpack round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    BasicType,
    Contiguous,
    Indexed,
    Vector,
    from_numpy_dtype,
    infer_datatype,
)
from repro.mpi.exceptions import DatatypeError


# ---------------------------------------------------------------------------
# basic types
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "dtype,size",
    [(BYTE, 1), (CHAR, 1), (INT, 4), (LONG, 8), (FLOAT, 4), (DOUBLE, 8)],
)
def test_basic_sizes(dtype, size):
    assert dtype.size == size
    assert dtype.extent == size
    assert dtype.contiguous


def test_basic_pack_unpack_ndarray():
    a = np.arange(10, dtype=np.int32)
    wire = INT.pack(a, 10)
    assert len(wire) == 40
    b = np.zeros(10, dtype=np.int32)
    INT.unpack(wire, b, 10)
    assert np.array_equal(a, b)


def test_byte_pack_from_bytes():
    assert BYTE.pack(b"hello", 5) == b"hello"
    assert BYTE.pack(b"hello", 3) == b"hel"


def test_byte_unpack_into_bytearray():
    buf = bytearray(5)
    BYTE.unpack(b"abc", buf, 3)
    assert bytes(buf) == b"abc\x00\x00"


def test_unpack_into_bytes_rejected():
    with pytest.raises(DatatypeError):
        BYTE.unpack(b"abc", b"xxxxx", 3)


def test_dtype_mismatch_rejected():
    a = np.zeros(4, dtype=np.float64)
    with pytest.raises(DatatypeError):
        INT.pack(a, 4)


def test_bytes_buffer_with_wide_type_rejected():
    with pytest.raises(DatatypeError):
        INT.pack(b"12345678", 2)


def test_pack_count_exceeds_buffer():
    with pytest.raises(DatatypeError):
        INT.pack(np.zeros(3, dtype=np.int32), 5)


def test_unpack_wrong_byte_count():
    with pytest.raises(DatatypeError):
        INT.unpack(b"\x00" * 7, np.zeros(4, dtype=np.int32), 2)


def test_negative_count_rejected():
    with pytest.raises(DatatypeError):
        INT.offsets(-1)


def test_zero_count_pack():
    assert INT.pack(np.zeros(3, dtype=np.int32), 0) == b""


def test_infer_datatype():
    assert infer_datatype(b"x") is BYTE
    assert infer_datatype(bytearray(2)) is BYTE
    assert infer_datatype(np.zeros(2, dtype=np.float64)) is DOUBLE
    assert infer_datatype(np.zeros(2, dtype=np.int32)) is INT
    with pytest.raises(DatatypeError):
        infer_datatype([1, 2, 3])


def test_from_numpy_dtype_caches_unknown():
    t1 = from_numpy_dtype(np.uint16)
    t2 = from_numpy_dtype(np.uint16)
    assert t1 is t2
    assert t1.size == 2


def test_readonly_receive_buffer_rejected():
    a = np.zeros(4, dtype=np.int32)
    a.setflags(write=False)
    with pytest.raises(DatatypeError):
        INT.unpack(b"\x00" * 16, a, 4)


# ---------------------------------------------------------------------------
# derived types
# ---------------------------------------------------------------------------


def test_contiguous_size_extent():
    t = Contiguous(4, DOUBLE)
    assert t.size == 32
    assert t.extent == 32
    assert t.contiguous


def test_contiguous_pack():
    a = np.arange(8, dtype=np.float64)
    t = Contiguous(4, DOUBLE)
    wire = t.pack(a, 2)  # 2 items of 4 doubles = everything
    b = np.zeros(8, dtype=np.float64)
    t.unpack(wire, b, 2)
    assert np.array_equal(a, b)


def test_vector_strided_column():
    """A Vector picks out a strided column of a row-major matrix."""
    m = np.arange(12, dtype=np.float64).reshape(3, 4)
    col = Vector(count=3, blocklength=1, stride=4, base=DOUBLE)
    wire = col.pack(m.ravel(), 1)
    vals = np.frombuffer(wire, dtype=np.float64)
    assert np.array_equal(vals, m[:, 0])


def test_vector_not_contiguous():
    t = Vector(3, 1, 4, DOUBLE)
    assert not t.contiguous
    assert t.size == 24  # 3 doubles of data
    assert t.extent == (2 * 4 + 1) * 8  # span


def test_vector_unpack_scatter():
    t = Vector(2, 2, 3, INT)
    src = np.array([1, 2, 3, 4], dtype=np.int32)
    wire = INT.pack(src, 4)
    dst = np.zeros(6, dtype=np.int32)
    t.unpack(wire, dst, 1)
    assert dst.tolist() == [1, 2, 0, 3, 4, 0]


def test_vector_overlapping_stride_rejected():
    with pytest.raises(DatatypeError):
        Vector(2, 4, 2, INT)


def test_indexed_blocks():
    t = Indexed([2, 1], [0, 5], INT)
    a = np.arange(8, dtype=np.int32)
    wire = t.pack(a, 1)
    assert np.frombuffer(wire, dtype=np.int32).tolist() == [0, 1, 5]


def test_indexed_overlap_rejected():
    with pytest.raises(DatatypeError):
        Indexed([3, 2], [0, 1], INT)


def test_indexed_validation():
    with pytest.raises(DatatypeError):
        Indexed([1], [0, 1], INT)
    with pytest.raises(DatatypeError):
        Indexed([], [], INT)
    with pytest.raises(DatatypeError):
        Indexed([0], [0], INT)
    with pytest.raises(DatatypeError):
        Indexed([1], [-1], INT)


def test_nested_derived_types():
    inner = Contiguous(2, INT)
    outer = Vector(2, 1, 2, inner)  # two 2-int blocks, strided
    a = np.arange(8, dtype=np.int32)
    wire = outer.pack(a, 1)
    assert np.frombuffer(wire, dtype=np.int32).tolist() == [0, 1, 4, 5]


def test_bad_constructions():
    with pytest.raises(DatatypeError):
        Contiguous(0, INT)
    with pytest.raises(DatatypeError):
        Vector(0, 1, 1, INT)
    with pytest.raises(DatatypeError):
        Vector(1, 0, 1, INT)


# ---------------------------------------------------------------------------
# property-based round trips
# ---------------------------------------------------------------------------


@given(st.binary(min_size=0, max_size=512))
def test_byte_roundtrip(data):
    buf = bytearray(len(data))
    BYTE.unpack(BYTE.pack(data, len(data)), buf, len(data))
    assert bytes(buf) == data


@given(
    st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1), min_size=0, max_size=128)
)
def test_int_roundtrip(values):
    a = np.array(values, dtype=np.int32)
    b = np.zeros_like(a)
    INT.unpack(INT.pack(a, a.size), b, a.size)
    assert np.array_equal(a, b)


@settings(max_examples=50)
@given(
    count=st.integers(min_value=1, max_value=5),
    blocklength=st.integers(min_value=1, max_value=4),
    extra_stride=st.integers(min_value=0, max_value=3),
    items=st.integers(min_value=1, max_value=3),
)
def test_vector_roundtrip(count, blocklength, extra_stride, items):
    """pack->unpack of any Vector restores exactly the covered elements."""
    stride = blocklength + extra_stride
    t = Vector(count, blocklength, stride, DOUBLE)
    n = t.extent_elems * items + 8
    rng = np.random.default_rng(42)
    src = rng.random(n)
    dst = np.full(n, -1.0)
    wire = t.pack(src, items)
    assert len(wire) == t.size * items
    t.unpack(wire, dst, items)
    offs = t.offsets(items)
    assert np.array_equal(dst[offs], src[offs])
    mask = np.ones(n, dtype=bool)
    mask[offs] = False
    assert np.all(dst[mask] == -1.0)  # untouched elsewhere


@settings(max_examples=30)
@given(st.data())
def test_indexed_roundtrip(data):
    nblocks = data.draw(st.integers(min_value=1, max_value=4))
    lengths = [data.draw(st.integers(min_value=1, max_value=3)) for _ in range(nblocks)]
    # construct non-overlapping displacements
    disps, cur = [], 0
    for ln in lengths:
        gap = data.draw(st.integers(min_value=0, max_value=2))
        disps.append(cur + gap)
        cur = disps[-1] + ln
    t = Indexed(lengths, disps, FLOAT)
    n = t.extent_elems + 4
    rng = np.random.default_rng(7)
    src = rng.random(n).astype(np.float32)
    dst = np.zeros(n, dtype=np.float32)
    t.unpack(t.pack(src, 1), dst, 1)
    offs = t.offsets(1)
    assert np.array_equal(dst[offs], src[offs])
