"""Modern-fabric regressions: the RDMA rendezvous RTS/pull under loss.

The rendezvous path on ``rdma`` is three wire legs — RTS to the
receiver, the READ request back to the sender's NIC, and the data
return — and every leg can be dropped by the fault injector.  The NIC's
head-of-line retransmission must make loss invisible to MPI semantics
(the payload arrives intact, exactly once, in order), only visible in
the fabric counters and the elapsed time.  Exhausting the bounded retry
budget must surface a :class:`~repro.errors.NetworkError` that names
the dead link, not hang.
"""

import pytest

from repro.errors import NetworkError
from repro.faults import FaultPlan, PacketCorruption, PacketDuplication, PacketLoss
from repro.mpi import World
from repro.mpi.exceptions import CommError

RDV_BYTES = 65536  # far above the rdma 8 KiB eager threshold


def _rendezvous_exchange(payloads):
    def main(comm):
        out = []
        for tag, payload in enumerate(payloads, start=1):
            if comm.rank == 0:
                yield from comm.send(payload, dest=1, tag=tag)
            else:
                data, _ = yield from comm.recv(source=0, tag=tag)
                out.append(bytes(data))
        return out

    return main


@pytest.mark.parametrize("loss", [0.10, 0.25])
def test_rdma_rendezvous_survives_message_loss(loss):
    """Every RTS/READ/data leg retransmits through seeded loss; the
    payloads land byte-exact and in order."""
    payloads = [bytes([tag]) * RDV_BYTES for tag in range(1, 4)]
    plan = FaultPlan.of(PacketLoss(fabric="rdma", probability=loss))
    world = World(2, platform="modern", device="rdma", faults=plan, seed=3)
    results = world.run(_rendezvous_exchange(payloads))
    assert results[1] == payloads
    fabric = world.platform.machine.fabric
    assert fabric.packets_dropped >= 1
    assert fabric.retransmits >= fabric.packets_dropped


def test_rdma_loss_timing_is_deterministic_and_pure_delay():
    """Same seed, same loss => identical elapsed time; loss only ever
    slows the run down relative to the clean fabric."""

    def elapsed(plan, seed):
        world = World(2, platform="modern", device="rdma", faults=plan, seed=seed)
        world.run(_rendezvous_exchange([bytes(RDV_BYTES)]))
        return world.sim.now

    plan = FaultPlan.of(PacketLoss(fabric="rdma", probability=0.2))
    assert elapsed(plan, seed=5) == elapsed(plan, seed=5)
    assert elapsed(plan, seed=5) > elapsed(None, seed=5)


def test_rdma_duplicated_and_corrupted_legs_are_absorbed():
    """Duplicates are discarded by the PSN check (counter-visible only);
    corrupted legs retransmit like losses."""
    plan = FaultPlan.of(
        PacketDuplication(fabric="rdma", probability=0.3),
        PacketCorruption(fabric="rdma", probability=0.1),
    )
    payloads = [bytes([7]) * RDV_BYTES]
    world = World(2, platform="modern", device="rdma", faults=plan, seed=2)
    results = world.run(_rendezvous_exchange(payloads))
    assert results[1] == payloads
    fabric = world.platform.machine.fabric
    assert fabric.packets_duplicated >= 1


def test_rdma_retry_exhaustion_surfaces_network_error():
    """A link that drops everything dies after its bounded retry budget
    and the send/recv raises with the dead link named."""
    plan = FaultPlan.of(PacketLoss(fabric="rdma", probability=1.0))
    world = World(2, platform="modern", device="rdma", faults=plan, seed=1)
    with pytest.raises((NetworkError, CommError), match="retry budget exhausted"):
        world.run(_rendezvous_exchange([bytes(RDV_BYTES)]))


def test_cxl_fabric_rule_does_not_touch_rdma():
    """Fabric-scoped rules select by device: a cxl-only loss rule leaves
    the rdma fabric clean."""
    plan = FaultPlan.of(PacketLoss(fabric="cxl", probability=1.0))
    payloads = [bytes(RDV_BYTES)]
    world = World(2, platform="modern", device="rdma", faults=plan, seed=1)
    results = world.run(_rendezvous_exchange(payloads))
    assert results[1] == payloads
    assert world.platform.machine.fabric.packets_dropped == 0
