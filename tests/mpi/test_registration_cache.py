"""The RDMA registration cache is a pure latency optimization.

Pinning memory is the RDMA rendezvous path's signature cost; the cache
(keyed by buffer identity, MVAPICH-style) may only make runs *faster*,
never change what they compute.  Property checked two ways:

* semantics — for a spread of fuzzed programs, the canonical semantic
  trace on ``modern-rdma`` is byte-identical with the cache disabled
  through the ``REPRO_RDMA_REG_CACHE=0`` env override;
* latency — a repeated-buffer rendezvous ping-pong is strictly slower
  with the cache off (every iteration pays the full pin cost).

The hit/miss counters surface through ``state_snapshot()`` (the same
dump the deadlock watchdog attaches), so a hung run also shows whether
registrations were being cached.
"""

import pytest

from repro.bench.harness import mpi_pingpong_rtt
from repro.conformance.executor import canonical_trace, differential, run_program
from repro.conformance.grammar import generate
from repro.mpi import World
from repro.mpi.device.rdma import RdmaConfig, RegistrationCache

RDV_BYTES = 65536  # far above the 8 KiB eager threshold


def _canon(program):
    return canonical_trace(run_program(program, "modern", "rdma"))


@pytest.mark.parametrize("seed", [1, 11, 21, 31])
def test_disabled_cache_is_byte_identical(seed, monkeypatch):
    program = generate(seed, profile="mixed")
    with_cache = _canon(program)
    monkeypatch.setenv("REPRO_RDMA_REG_CACHE", "0")
    without_cache = _canon(program)
    assert with_cache == without_cache


def test_disabled_cache_still_passes_the_differential(monkeypatch):
    """The no-cache rdma cell still agrees with the whole matrix."""
    monkeypatch.setenv("REPRO_RDMA_REG_CACHE", "0")
    result = differential(generate(7, profile="pt2pt"))
    assert result.ok, result.summary()


def test_cache_is_a_pure_latency_win(monkeypatch):
    """Rendezvous on a reused buffer: cache off = strictly slower,
    eager (no registration on the bounce path) = identical timing."""
    warm = mpi_pingpong_rtt("modern", "rdma", RDV_BYTES, repeats=3)
    monkeypatch.setenv("REPRO_RDMA_REG_CACHE", "0")
    cold = mpi_pingpong_rtt("modern", "rdma", RDV_BYTES, repeats=3)
    assert cold > warm
    monkeypatch.delenv("REPRO_RDMA_REG_CACHE")
    eager_on = mpi_pingpong_rtt("modern", "rdma", 1024, repeats=3)
    monkeypatch.setenv("REPRO_RDMA_REG_CACHE", "0")
    eager_off = mpi_pingpong_rtt("modern", "rdma", 1024, repeats=3)
    assert eager_on == eager_off


def test_counters_exposed_through_state_snapshot():
    world = World(2, platform="modern", device="rdma")

    def main(comm):
        payload = bytes(RDV_BYTES)
        for tag in (1, 2, 3):
            if comm.rank == 0:
                yield from comm.send(payload, dest=1, tag=tag)
            else:
                yield from comm.recv(source=0, tag=tag)

    world.run(main)
    for ep in world.platform.endpoints:
        cache = ep.state_snapshot()["flow"]["registration_cache"]
        assert cache["enabled"] is True
        assert cache["hits"] + cache["misses"] >= 1
    sender = world.platform.endpoints[0].state_snapshot()
    # same payload object re-pinned per send: first is the miss
    assert sender["flow"]["registration_cache"]["misses"] == 1
    assert sender["flow"]["registration_cache"]["hits"] == 2


def test_env_override_disables_and_counts_misses(monkeypatch):
    monkeypatch.setenv("REPRO_RDMA_REG_CACHE", "0")
    world = World(2, platform="modern", device="rdma")

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(bytes(RDV_BYTES), dest=1, tag=1)
        else:
            yield from comm.recv(source=0, tag=1)

    world.run(main)
    cache = world.platform.endpoints[0].state_snapshot()["flow"]["registration_cache"]
    assert cache["enabled"] is False
    assert cache["hits"] == 0
    assert cache["misses"] >= 1


# ---------------------------------------------------------------- unit level


def test_lru_holds_strong_references_and_evicts():
    cache = RegistrationCache(entries=2, enabled=True)
    a, b, c = bytearray(8), bytearray(8), bytearray(8)
    assert cache.lookup(a) is False     # miss, pinned
    assert cache.lookup(a) is True      # hit
    assert cache.lookup(b) is False
    assert cache.lookup(c) is False     # evicts a (LRU)
    assert cache.lookup(a) is False     # a was evicted: miss again
    snap = cache.snapshot()
    assert snap["pinned"] == 2
    assert snap["hits"] == 1
    assert snap["misses"] == 4
    # pinned entries hold strong refs: a cached id always denotes the
    # same live object, so identity reuse cannot fake a hit
    import sys

    assert sys.getrefcount(c) >= 3  # local + cache + getrefcount arg


def test_unbuffered_receives_hit_the_preregistered_pool():
    cache = RegistrationCache(entries=4, enabled=True)
    assert cache.lookup(None) is True
    assert cache.snapshot()["hits"] == 1


def test_config_switch_disables_cache():
    cfg = RdmaConfig(reg_cache=False)
    world = World(2, platform="modern", device="rdma", device_config=cfg)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(bytes(RDV_BYTES), dest=1, tag=1)
        else:
            yield from comm.recv(source=0, tag=1)

    world.run(main)
    cache = world.platform.endpoints[0].state_snapshot()["flow"]["registration_cache"]
    assert cache["enabled"] is False
