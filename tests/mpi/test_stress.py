"""Randomized stress tests: arbitrary traffic patterns must deliver
every payload exactly, on every device."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import ANY_SOURCE, World
from tests.conftest import MEIKO_DEVICES, run_world


def payload_for(src, tag, seq, size):
    """Deterministic, content-checkable payload."""
    head = bytes([src & 0xFF, tag & 0xFF, seq & 0xFF])
    body = bytes((src * 7 + tag * 13 + seq * 29 + i) % 251 for i in range(size - 3))
    return head + body


messages_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),  # sender rank (1..3)
        st.integers(min_value=0, max_value=2),  # tag
        st.integers(min_value=3, max_value=600),  # size (spans the 180B switch)
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=15, deadline=None)
@given(messages=messages_strategy)
def test_random_fan_in_exact_delivery(messages):
    """Random many-to-one traffic: rank 0 receives everything exactly,
    with per-(sender, tag) streams in order."""

    def main(comm):
        mine = [
            (i, tag, size)
            for i, (src, tag, size) in enumerate(messages)
            if src == comm.rank
        ]
        if comm.rank == 0:
            got = {}
            for _ in range(len(messages)):
                data, st_ = yield from comm.recv(source=ANY_SOURCE)
                got.setdefault((st_.source, st_.tag), []).append(bytes(data))
            return got
        for seq, tag, size in mine:
            yield from comm.send(payload_for(comm.rank, tag, seq, size), dest=0, tag=tag)

    got = World(4, platform="meiko", device="lowlatency").run(main)[0]
    # rebuild the expected per-(source, tag) streams in send order
    expected = {}
    for i, (src, tag, size) in enumerate(messages):
        expected.setdefault((src, tag), []).append(payload_for(src, tag, i, size))
    assert got == expected


@settings(max_examples=8, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=30000), min_size=2, max_size=5),
    seed=st.integers(min_value=0, max_value=3),
)
def test_random_ring_sizes_all_devices(sizes, seed):
    """A ring exchange of random-size messages survives the protocol
    switches on both Meiko devices."""

    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        out = []
        for i, size in enumerate(sizes):
            data = payload_for(comm.rank, i, seed, max(3, size))
            req = yield from comm.isend(data, dest=right, tag=i)
            got, _ = yield from comm.recv(source=left, tag=i)
            yield from comm.wait(req)
            out.append(bytes(got))
        return out

    for platform, device in MEIKO_DEVICES:
        res = run_world(3, main, platform, device)
        for rank in range(3):
            left = (rank - 1) % 3
            expected = [
                payload_for(left, i, seed, max(3, s)) for i, s in enumerate(sizes)
            ]
            assert res[rank] == expected


def test_sustained_bidirectional_traffic_cluster():
    """Hundreds of interleaved messages over the credit-limited TCP
    device: no deadlock, no loss, exact ordering per stream."""
    N = 150

    def main(comm):
        other = 1 - comm.rank
        reqs = []
        for i in range(N):
            r = yield from comm.isend(payload_for(comm.rank, 1, i, 40), dest=other, tag=1)
            reqs.append(r)
        out = []
        for i in range(N):
            data, _ = yield from comm.recv(source=other, tag=1)
            out.append(bytes(data))
        yield from comm.waitall(reqs)
        return out

    res = run_world(2, main, "atm", "tcp")
    for rank in range(2):
        expected = [payload_for(1 - rank, 1, i, 40) for i in range(N)]
        assert res[rank] == expected


def test_mixed_collectives_and_pt2pt_stress(meiko_device):
    """Collectives interleaved with wildcard point-to-point traffic."""
    platform, device = meiko_device
    rounds = 6

    def main(comm):
        total = np.zeros(1)
        for k in range(rounds):
            if comm.rank == k % comm.size:
                for r in range(comm.size):
                    if r != comm.rank:
                        yield from comm.send(bytes([k]), dest=r, tag=50 + k)
            else:
                data, st_ = yield from comm.recv(source=ANY_SOURCE, tag=50 + k)
                assert data[0] == k
            result = yield from comm.allreduce(np.array([float(comm.rank)]))
            total += result
            yield from comm.barrier()
        return float(total[0])

    res = run_world(4, main, platform, device)
    assert res == [6.0 * rounds] * 4  # sum(0..3) per round


def test_unexpected_flood_then_drain(meiko_device):
    """A flood of unexpected messages (buffered at the receiver) drains
    correctly once receives are finally posted — in order per tag."""
    platform, device = meiko_device
    per_tag = 10

    def main(comm):
        if comm.rank == 0:
            for i in range(per_tag):
                for tag in (1, 2, 3):
                    yield from comm.send(bytes([tag, i]), dest=1, tag=tag)
            yield from comm.send(b"done", dest=1, tag=9)
        else:
            yield from comm.recv(source=0, tag=9)  # everything else is unexpected
            out = {}
            for tag in (3, 1, 2):  # drain in a different order than sent
                got = []
                for _ in range(per_tag):
                    data, _ = yield from comm.recv(source=0, tag=tag)
                    got.append(data[1])
                out[tag] = got
            return out

    res = run_world(2, main, platform, device)[1]
    for tag in (1, 2, 3):
        assert res[tag] == list(range(per_tag))


def test_mpi_over_lossy_fabric_still_correct():
    """10% frame loss on the Ethernet: TCP retransmits underneath and the
    MPI layer never notices — every message arrives exactly once, in
    order (end-to-end fault-tolerance of the stack)."""
    import random

    from repro.net.kernel import KernelParams

    rng = random.Random(3)

    def lossy(frame):
        return rng.random() < 0.10

    kp = KernelParams().with_overrides(rto=8_000.0)

    def main(comm):
        other = 1 - comm.rank
        out = []
        for i in range(12):
            req = yield from comm.isend(payload_for(comm.rank, 2, i, 300),
                                        dest=other, tag=2)
            data, _ = yield from comm.recv(source=other, tag=2)
            yield from comm.wait(req)
            out.append(bytes(data))
        return out

    res = World(2, platform="ethernet", device="tcp",
                kernel_params=kp, drop_fn=lossy).run(main)
    for rank in range(2):
        assert res[rank] == [payload_for(1 - rank, 2, i, 300) for i in range(12)]


def test_mpi_udp_over_lossy_fabric_still_correct():
    """The same under reliable-UDP: the user-level layer recovers."""
    import random

    from repro.net.kernel import KernelParams

    rng = random.Random(9)

    def lossy(frame):
        return rng.random() < 0.08

    kp = KernelParams().with_overrides(rto=8_000.0)

    def main(comm):
        if comm.rank == 0:
            got = []
            for i in range(10):
                data, _ = yield from comm.recv(source=1, tag=1)
                got.append(bytes(data))
            return got
        for i in range(10):
            yield from comm.send(payload_for(1, 1, i, 500), dest=0, tag=1)

    res = World(2, platform="ethernet", device="udp",
                kernel_params=kp, drop_fn=lossy).run(main)
    assert res[0] == [payload_for(1, 1, i, 500) for i in range(10)]


def test_meiko_rejects_cluster_only_options():
    import pytest as _pytest

    from repro.errors import ConfigurationError

    with _pytest.raises(ConfigurationError):
        World(2, platform="meiko", drop_fn=lambda f: False)
