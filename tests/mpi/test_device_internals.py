"""Device-internal unit tests: wire encodings, envelope round trips,
tag-word layouts — the bits that must be exactly right."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.constants import (
    MODE_BUFFERED,
    MODE_READY,
    MODE_STANDARD,
    MODE_SYNCHRONOUS,
    TAG_UB,
)
from repro.mpi.device.cluster import HEADER_BYTES, StreamEndpoint, _ENV
from repro.mpi.device.mpich import (
    FLAG_SYNC,
    MASK_CHAN,
    MASK_EXACT,
    decode_tag,
    encode_tag,
)
from repro.mpi.envelope import ENVELOPE_WIRE_BYTES, Envelope


# ---------------------------------------------------------------------------
# cluster-device wire format (Table 1's 25 bytes)
# ---------------------------------------------------------------------------


def test_header_is_25_bytes():
    """1 type byte + 4 credit bytes + 20-byte envelope (paper, Table 1)."""
    assert HEADER_BYTES == 25
    assert _ENV.size == ENVELOPE_WIRE_BYTES == 20


@given(
    src=st.integers(min_value=0, max_value=2**15 - 1),
    context=st.integers(min_value=0, max_value=2**16 - 1),
    tag=st.integers(min_value=0, max_value=TAG_UB),
    nbytes=st.integers(min_value=0, max_value=2**31 - 1),
    cookie=st.integers(min_value=0, max_value=2**31 - 1),
    mode=st.sampled_from([MODE_STANDARD, MODE_BUFFERED, MODE_SYNCHRONOUS, MODE_READY]),
)
def test_envelope_wire_roundtrip(src, context, tag, nbytes, cookie, mode):
    """Pack/unpack through the 20-byte wire record is lossless."""
    env = Envelope(src=src, tag=tag, context=context, nbytes=nbytes,
                   mode=mode, cookie=cookie)
    from repro.mpi.device.cluster import _MODES

    raw = _ENV.pack(env.src, env.context, env.tag, env.nbytes,
                    env.cookie or 0, _MODES[env.mode])
    back = StreamEndpoint._unpack_env(raw, src_world=7)
    assert back.src == src
    assert back.context == context
    assert back.tag == tag
    assert back.nbytes == nbytes
    assert back.cookie == cookie
    assert back.mode == mode
    assert back.extra == 7


# ---------------------------------------------------------------------------
# mpich tag-word layout
# ---------------------------------------------------------------------------


@given(
    context=st.integers(min_value=0, max_value=2**16 - 1),
    field=st.integers(min_value=0, max_value=2**32 - 1),
    chan=st.integers(min_value=0, max_value=2),
    flags=st.integers(min_value=0, max_value=2**12 - 1),
)
def test_tag_word_roundtrip(context, field, chan, flags):
    word = encode_tag(context, field, chan, flags)
    assert decode_tag(word) == (context, chan, field, flags)


def test_mask_exact_ignores_flags_only():
    a = encode_tag(3, 42, 0, 0)
    b = encode_tag(3, 42, 0, FLAG_SYNC)
    assert (a & MASK_EXACT) == (b & MASK_EXACT)
    c = encode_tag(3, 43, 0, 0)
    assert (a & MASK_EXACT) != (c & MASK_EXACT)


def test_mask_chan_matches_any_tag_same_channel():
    a = encode_tag(3, 42, 0, 0)
    b = encode_tag(3, 9999, 0, FLAG_SYNC)
    assert (a & MASK_CHAN) == (b & MASK_CHAN)
    # different channel does not match (ack vs user)
    c = encode_tag(3, 42, 1, 0)
    assert (a & MASK_CHAN) != (c & MASK_CHAN)
    # different context does not match
    d = encode_tag(4, 42, 0, 0)
    assert (a & MASK_CHAN) != (d & MASK_CHAN)


def test_collective_channel_separated_from_user():
    user = encode_tag(0, 5, chan=0)
    coll = encode_tag(0, 5, chan=2)
    assert (user & MASK_CHAN) != (coll & MASK_CHAN)


# ---------------------------------------------------------------------------
# envelope matching rules
# ---------------------------------------------------------------------------


@given(
    src=st.integers(min_value=0, max_value=15),
    tag=st.integers(min_value=0, max_value=100),
    context=st.integers(min_value=0, max_value=5),
)
def test_envelope_exact_match_property(src, tag, context):
    env = Envelope(src=src, tag=tag, context=context, nbytes=0)
    assert env.matches(src, tag, context, any_source=-1, any_tag=-1)
    assert env.matches(-1, tag, context, any_source=-1, any_tag=-1)
    assert env.matches(src, -1, context, any_source=-1, any_tag=-1)
    assert not env.matches(src + 1, tag, context, any_source=-1, any_tag=-1)
    assert not env.matches(src, tag + 1, context, any_source=-1, any_tag=-1)
    assert not env.matches(src, tag, context + 1, any_source=-1, any_tag=-1)
