"""Jacobi heat-diffusion tests (the Cartesian-topology application)."""

import numpy as np
import pytest

from repro.apps import initial_grid, jacobi_heat, reference_jacobi
from repro.errors import ConfigurationError
from tests.conftest import run_world


def test_reference_converges_toward_boundary():
    g = reference_jacobi(initial_grid(16, 16), 200)
    # interior warms up but never exceeds the hot boundary
    assert g[1:-1, 1:-1].max() <= 100.0
    assert g[1, 1:-1].mean() > g[-2, 1:-1].mean()  # hotter near the hot edge


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_jacobi_matches_reference(meiko_device, nprocs):
    platform, device = meiko_device

    def main(comm):
        g, elapsed = yield from jacobi_heat(comm, nx=16, ny=12, iters=10)
        return g

    res = run_world(nprocs, main, platform, device)
    expected = reference_jacobi(initial_grid(16, 12), 10)
    assert np.allclose(res[0], expected)
    assert all(r is None for r in res[1:])


def test_jacobi_on_cluster():
    def main(comm):
        g, _ = yield from jacobi_heat(comm, nx=8, ny=8, iters=5, flop_time=0.03)
        return g

    res = run_world(2, main, "atm", "tcp")
    expected = reference_jacobi(initial_grid(8, 8), 5)
    assert np.allclose(res[0], expected)


def test_jacobi_requires_divisible_rows():
    def main(comm):
        with pytest.raises(ConfigurationError):
            yield from jacobi_heat(comm, nx=9)
        yield from comm.barrier()

    run_world(2, main)


def test_jacobi_zero_iters_returns_initial():
    def main(comm):
        g, _ = yield from jacobi_heat(comm, nx=8, ny=8, iters=0)
        return g

    res = run_world(2, main)
    assert np.array_equal(res[0], initial_grid(8, 8))


def test_jacobi_low_latency_beats_mpich():
    """Small halo messages per iteration: the latency-sensitive pattern."""

    def main(comm):
        _, elapsed = yield from jacobi_heat(comm, nx=32, ny=32, iters=20)
        return elapsed

    ll = max(run_world(8, main, "meiko", "lowlatency"))
    mp = max(run_world(8, main, "meiko", "mpich"))
    assert ll < mp
