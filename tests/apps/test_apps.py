"""Application tests: numerical correctness on every device + the
paper's qualitative performance claims."""

import numpy as np
import pytest

from repro.apps import (
    generate_particles,
    generate_system,
    linsolve,
    matmul,
    nbody_ring,
    reference_forces,
)
from repro.errors import ConfigurationError
from repro.mpi import World
from tests.conftest import run_world


# ---------------------------------------------------------------------------
# linear solver
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_linsolve_correct(meiko_device, nprocs):
    platform, device = meiko_device
    n = 24

    def main(comm):
        x, elapsed = yield from linsolve(comm, n=n, seed=3)
        return x, elapsed

    res = run_world(nprocs, main, platform, device)
    x, elapsed = res[0]
    a, b = generate_system(n, seed=3)
    assert np.allclose(a @ x, b, atol=1e-8)
    assert elapsed > 0
    assert all(r[0] is None for r in res[1:])


def test_linsolve_on_cluster():
    def main(comm):
        x, _ = yield from linsolve(comm, n=12, seed=1, flop_time=0.03)
        return x

    res = run_world(3, main, "atm", "tcp")
    a, b = generate_system(12, seed=1)
    assert np.allclose(a @ res[0], b, atol=1e-8)


def test_linsolve_explicit_system(meiko_device):
    platform, device = meiko_device
    a = np.array([[2.0, 1.0], [1.0, 3.0]])
    b = np.array([3.0, 5.0])

    def main(comm):
        x, _ = yield from linsolve(comm, n=2, a=a, b=b)
        return x

    res = run_world(2, main, platform, device)
    assert np.allclose(res[0], np.linalg.solve(a, b))


def test_linsolve_rejects_bad_n():
    def main(comm):
        with pytest.raises(ConfigurationError):
            yield from linsolve(comm, n=0)
        return True

    assert run_world(1, main)[0] is True


def test_linsolve_lowlatency_beats_mpich():
    """Figure 7: the hardware-broadcast implementation is faster, and
    relatively more so with more processes."""

    def main(comm):
        _, elapsed = yield from linsolve(comm, n=32, seed=0)
        return elapsed

    def time_of(device, nprocs):
        return max(run_world(nprocs, main, "meiko", device))

    for nprocs in (4, 8):
        ll = time_of("lowlatency", nprocs)
        mp = time_of("mpich", nprocs)
        assert ll < mp, f"P={nprocs}: lowlatency {ll} not faster than mpich {mp}"


# ---------------------------------------------------------------------------
# matmul
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_matmul_correct(meiko_device, nprocs):
    platform, device = meiko_device
    n = 16

    def main(comm):
        c, elapsed = yield from matmul(comm, n=n, seed=5)
        return c

    res = run_world(nprocs, main, platform, device)
    rng = np.random.default_rng(5)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    assert np.allclose(res[0], a @ b)


def test_matmul_explicit_inputs():
    a = np.eye(3) * 2
    b = np.arange(9, dtype=float).reshape(3, 3)

    def main(comm):
        c, _ = yield from matmul(comm, n=3, a=a, b=b)
        return c

    res = run_world(3, main)
    assert np.allclose(res[0], a @ b)


# ---------------------------------------------------------------------------
# nbody
# ---------------------------------------------------------------------------


def test_reference_forces_antisymmetric():
    p = generate_particles(6, seed=2)
    f = reference_forces(p)
    # total force on a closed system is ~zero (Newton's third law)
    assert np.allclose(f.sum(axis=0), 0.0, atol=1e-10)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_nbody_matches_reference(meiko_device, nprocs):
    platform, device = meiko_device
    n = 24

    def main(comm):
        f, elapsed = yield from nbody_ring(comm, nparticles=n, seed=7)
        return f

    res = run_world(nprocs, main, platform, device)
    expected = reference_forces(generate_particles(n, seed=7))
    assert np.allclose(res[0], expected, atol=1e-9)


def test_nbody_on_cluster_devices():
    n = 16

    def main(comm):
        f, _ = yield from nbody_ring(comm, nparticles=n, seed=4, flop_time=0.03)
        return f

    expected = reference_forces(generate_particles(n, seed=4))
    for platform, device in [("ethernet", "tcp"), ("atm", "udp")]:
        res = run_world(4, main, platform, device)
        assert np.allclose(res[0], expected, atol=1e-9)


def test_nbody_requires_divisible():
    def main(comm):
        with pytest.raises(ConfigurationError):
            yield from nbody_ring(comm, nparticles=25)
        return True

    run_world(2, main)


def test_nbody_atm_beats_ethernet_at_scale():
    """Figure 9: for 128 particles, the ATM cluster outperforms the
    shared Ethernet, and the gap grows with processes."""

    def main(comm):
        _, elapsed = yield from nbody_ring(
            comm, nparticles=128, seed=0, flop_time=0.03
        )
        return elapsed

    def time_of(platform, nprocs):
        return max(run_world(nprocs, main, platform, "tcp"))

    for nprocs in (4, 8):
        atm = time_of("atm", nprocs)
        eth = time_of("ethernet", nprocs)
        assert atm < eth, f"P={nprocs}: atm {atm} not faster than ethernet {eth}"


def test_nbody_meiko_low_latency_helps():
    """Figure 8's mechanism: with small messages and synchronized
    phases, the low-latency implementation beats MPICH."""

    def main(comm):
        _, elapsed = yield from nbody_ring(comm, nparticles=24, seed=0)
        return elapsed

    ll = max(run_world(8, main, "meiko", "lowlatency"))
    mp = max(run_world(8, main, "meiko", "mpich"))
    assert ll < mp
