"""Tests for Notify (counted events) and the Tracer."""

import pytest

from repro.sim import Simulator, Tracer
from repro.sim.notify import Notify


@pytest.fixture
def sim():
    return Simulator()


# ---------------------------------------------------------------------------
# Notify
# ---------------------------------------------------------------------------


def test_set_before_wait_counted(sim):
    n = Notify(sim)
    n.set()
    n.set()
    assert n.count == 2

    def proc(sim):
        yield n.wait()
        yield n.wait()
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 0.0
    assert n.count == 0


def test_waiters_fifo(sim):
    n = Notify(sim)
    order = []

    def waiter(sim, tag):
        yield n.wait()
        order.append(tag)

    for tag in "abc":
        sim.process(waiter(sim, tag))

    def setter(sim):
        for _ in range(3):
            yield sim.timeout(1.0)
            n.set()

    sim.process(setter(sim))
    sim.run()
    assert order == list("abc")


def test_cancel_wait_preserves_token(sim):
    n = Notify(sim)
    ev = n.wait()
    assert n.cancel_wait(ev)
    n.set()
    assert n.count == 1  # the cancelled waiter did not consume it
    assert not n.cancel_wait(ev)  # second cancel is a no-op


def test_poll(sim):
    n = Notify(sim)
    assert not n.poll()
    n.set()
    assert n.poll()
    assert not n.poll()


def test_total_sets_counts_lifetime(sim):
    n = Notify(sim)
    for _ in range(5):
        n.set()
    n.poll()
    assert n.total_sets == 5


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


def test_tracer_disabled_by_default():
    t = Tracer()
    t.log(1.0, "cat", "x")
    assert t.records == []


def test_tracer_enable_specific():
    t = Tracer()
    t.enable("a")
    t.log(1.0, "a", 1)
    t.log(2.0, "b", 2)
    assert len(t.records) == 1
    assert t.records[0].category == "a"


def test_tracer_wildcard():
    t = Tracer()
    t.enable("*")
    t.log(1.0, "anything")
    assert len(t.records) == 1


def test_tracer_disable():
    t = Tracer()
    t.enable("a")
    t.disable("a")
    t.log(1.0, "a")
    assert t.records == []


def test_tracer_counts_and_last():
    t = Tracer()
    t.enable("*")
    t.log(1.0, "x")
    t.log(2.0, "x")
    t.log(3.0, "y")
    assert t.counts() == {"x": 2, "y": 1}
    assert t.last("x").time == 2.0
    assert t.last("z") is None


def test_tracer_spans():
    t = Tracer()
    t.enable("*")
    t.log(1.0, "start")
    t.log(4.0, "end")
    t.log(10.0, "start")
    t.log(11.5, "end")
    assert t.spans("start", "end") == [3.0, 1.5]


def test_tracer_clear():
    t = Tracer()
    t.enable("*")
    t.log(1.0, "x")
    t.clear()
    assert t.records == []
