"""Cancellable timers: Timeout.cancel, call_later, lazy heap deletion.

These are the kernel features the protocol stacks' retransmission and
delayed-ACK timers are built on; the contract under test is that a
cancelled timer NEVER fires (zero dead-event deliveries) and that the
tombstone bookkeeping never loses live events.
"""

import pytest

from repro.sim import SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestCancel:
    def test_cancelled_timer_never_fires(self, sim):
        fired = []
        handle = sim.call_later(5.0, fired.append)
        assert handle.cancel() is True
        sim.run()
        assert fired == []
        assert sim.now == 0.0  # nothing left to advance the clock

    def test_cancel_is_idempotent(self, sim):
        handle = sim.call_later(5.0, lambda ev: None)
        assert handle.cancel() is True
        assert handle.cancel() is False

    def test_cancel_after_fire_returns_false(self, sim):
        fired = []
        handle = sim.call_later(5.0, fired.append)
        sim.run()
        assert len(fired) == 1
        assert handle.cancel() is False

    def test_cancelled_timeout_not_processed(self, sim):
        handle = sim.timeout(5.0)
        handle.cancel()
        assert not handle.processed  # cancelled != delivered

    def test_cancel_does_not_disturb_other_timers(self, sim):
        fired = []
        keep = sim.call_later(10.0, lambda ev: fired.append("keep"))
        kill = sim.call_later(5.0, lambda ev: fired.append("kill"))
        kill.cancel()
        sim.run()
        assert fired == ["keep"]
        assert sim.now == 10.0
        assert keep.processed

    def test_blocked_process_timeout_can_be_cancelled(self, sim):
        """A process sleeping on a separate cancelled timer is unaffected."""
        log = []

        def proc(sim):
            spare = sim.timeout(100.0)  # armed but never waited on
            spare.cancel()
            yield sim.timeout(3.0)
            log.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert log == [3.0]

    def test_step_skips_tombstones(self, sim):
        fired = []
        dead = [sim.call_later(d, fired.append) for d in (1.0, 2.0, 3.0)]
        sim.call_later(4.0, fired.append)
        for h in dead:
            h.cancel()
        sim.step()  # must skip all three tombstones and fire the live timer
        assert len(fired) == 1
        assert sim.now == 4.0

    def test_step_on_all_tombstone_heap_raises(self, sim):
        sim.call_later(1.0, lambda ev: None).cancel()
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek_prunes_tombstones(self, sim):
        sim.call_later(1.0, lambda ev: None).cancel()
        assert sim.peek() == float("inf")
        assert not sim._heap  # pruned, not merely skipped

    def test_peek_reports_next_live_event(self, sim):
        sim.call_later(1.0, lambda ev: None).cancel()
        sim.call_later(7.0, lambda ev: None)
        assert sim.peek() == 7.0


class TestCompaction:
    def test_mass_cancellation_compacts_without_losing_events(self):
        """Regression: compaction must edit the heap list in place.

        run() holds a local reference to the heap; an early version
        rebound ``sim._heap`` to a fresh list during compaction, so the
        run loop kept draining the stale list and silently dropped every
        event scheduled after the first compaction (>512 cancels).
        """
        sim = Simulator()
        n = 2_000  # far past the 512-tombstone compaction threshold
        completed = []

        def op(sim):
            for _ in range(n):
                handle = sim.call_later(1_000.0, lambda ev: None)
                yield sim.timeout(1.0)
                handle.cancel()
            completed.append(sim.now)

        sim.process(op(sim))
        sim.run()
        assert completed == [float(n)]
        assert sim._seq == 2 * n + 2  # every event was actually scheduled

    def test_mass_cancellation_zero_fires(self):
        sim = Simulator()

        def boom(_event):
            raise AssertionError("cancelled timer fired")

        def op(sim):
            for _ in range(1_500):
                handle = sim.call_later(50.0, boom)
                yield sim.timeout(1.0)
                handle.cancel()

        sim.process(op(sim))
        sim.run()  # raises if any tombstone is delivered


class TestCallLater:
    def test_fires_at_the_right_time_with_event_arg(self, sim):
        seen = []
        sim.call_later(2.5, lambda ev: seen.append((sim.now, ev.processed)))
        sim.run()
        # processed is already set by the time the callback runs
        assert seen == [(2.5, True)]

    def test_zero_delay_fires_this_timestamp(self, sim):
        order = []

        def proc(sim):
            sim.call_later(0.0, lambda ev: order.append("cb"))
            order.append("before-yield")
            yield sim.timeout(1.0)
            order.append("after-sleep")

        sim.process(proc(sim))
        sim.run()
        assert order == ["before-yield", "cb", "after-sleep"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.call_later(-1.0, lambda ev: None)


class TestRunUntilComplete:
    def test_same_time_bookkeeping_drained(self, sim):
        """run_until_complete must drain same-timestamp events so the
        target's processed flag is consistent when it returns."""

        def child(sim):
            yield sim.timeout(3.0)
            return 42

        proc = sim.process(child(sim))
        assert sim.run_until_complete(proc) == 42
        assert proc.processed
        assert proc.ok
