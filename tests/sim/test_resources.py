"""Unit tests for Resource / Store / PriorityStore."""

import pytest

from repro.sim import PriorityStore, Resource, SimulationError, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_grants_immediately_when_free(sim):
    res = Resource(sim, capacity=1)

    def proc(sim):
        req = res.request()
        yield req
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 0.0


def test_resource_serializes_two_users(sim):
    res = Resource(sim, capacity=1)
    log = []

    def user(sim, tag, hold):
        yield from res.use(hold)
        log.append((tag, sim.now))

    sim.process(user(sim, "a", 10.0))
    sim.process(user(sim, "b", 5.0))
    sim.run()
    assert log == [("a", 10.0), ("b", 15.0)]


def test_resource_capacity_two_runs_in_parallel(sim):
    res = Resource(sim, capacity=2)
    log = []

    def user(sim, tag):
        yield from res.use(10.0)
        log.append((tag, sim.now))

    for tag in "abc":
        sim.process(user(sim, tag))
    sim.run()
    assert log == [("a", 10.0), ("b", 10.0), ("c", 20.0)]


def test_resource_fifo_order(sim):
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, tag):
        yield from res.use(1.0)
        order.append(tag)

    for tag in "abcdef":
        sim.process(user(sim, tag))
    sim.run()
    assert order == list("abcdef")


def test_resource_counters(sim):
    res = Resource(sim, capacity=1)

    def holder(sim):
        req = res.request()
        yield req
        assert res.in_use == 1
        yield sim.timeout(5.0)
        res.release(req)

    def waiter(sim):
        yield sim.timeout(1.0)
        assert res.queued == 0
        req = res.request()
        assert res.queued == 1
        yield req
        res.release(req)

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run()
    assert res.in_use == 0


def test_resource_over_release_rejected(sim):
    res = Resource(sim, capacity=1)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_release_foreign_request_rejected(sim):
    r1 = Resource(sim)
    r2 = Resource(sim)
    req = r1.request()
    with pytest.raises(SimulationError):
        r2.release(req)


def test_resource_cancel_pending_request(sim):
    res = Resource(sim, capacity=1)
    held = res.request()  # granted
    pending = res.request()  # queued
    res.release(pending)  # cancel before grant
    assert res.queued == 0
    res.release(held)
    assert res.in_use == 0


def test_resource_bad_capacity(sim):
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_use_releases_on_exception(sim):
    res = Resource(sim, capacity=1)

    def crasher(sim):
        gen = res.use(100.0)
        yield next(gen)  # acquire
        gen.throw(RuntimeError("abort"))  # triggers finally -> release
        yield sim.timeout(0)

    def after(sim):
        yield sim.timeout(1.0)
        yield from res.use(1.0)
        return sim.now

    def outer(sim):
        try:
            yield sim.process(crasher(sim))
        except RuntimeError:
            pass

    sim.process(outer(sim))
    p = sim.process(after(sim))
    sim.run()
    assert p.value == 2.0  # not blocked for 100us


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_put_then_get(sim):
    store = Store(sim)

    def proc(sim):
        yield store.put("x")
        item = yield store.get()
        return item

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "x"


def test_store_get_blocks_until_put(sim):
    store = Store(sim)

    def getter(sim):
        item = yield store.get()
        return (sim.now, item)

    def putter(sim):
        yield sim.timeout(7.0)
        yield store.put("late")

    p = sim.process(getter(sim))
    sim.process(putter(sim))
    sim.run()
    assert p.value == (7.0, "late")


def test_store_fifo(sim):
    store = Store(sim)
    for i in range(5):
        store.put(i)

    def getter(sim):
        out = []
        for _ in range(5):
            out.append((yield store.get()))
        return out

    p = sim.process(getter(sim))
    sim.run()
    assert p.value == [0, 1, 2, 3, 4]


def test_bounded_store_blocks_putter(sim):
    store = Store(sim, capacity=1)
    log = []

    def putter(sim):
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")
        log.append(("put-b", sim.now))

    def getter(sim):
        yield sim.timeout(10.0)
        item = yield store.get()
        log.append((f"got-{item}", sim.now))

    sim.process(putter(sim))
    sim.process(getter(sim))
    sim.run()
    assert log == [("put-a", 0.0), ("got-a", 10.0), ("put-b", 10.0)]


def test_store_try_get(sim):
    store = Store(sim)
    assert store.try_get() is None
    store.put(1)
    assert store.try_get() == 1
    assert store.try_get() is None


def test_store_try_get_admits_blocked_putter(sim):
    store = Store(sim, capacity=1)
    store.put("a")
    blocked = store.put("b")
    assert not blocked.triggered
    assert store.try_get() == "a"
    assert blocked.triggered
    assert store.try_get() == "b"


def test_store_len_and_getter_count(sim):
    store = Store(sim)
    assert len(store) == 0
    store.get()
    assert store.waiting_getters == 1
    store.put("x")
    assert store.waiting_getters == 0


def test_store_bad_capacity(sim):
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_many_getters_served_in_order(sim):
    store = Store(sim)
    got = []

    def getter(sim, tag):
        item = yield store.get()
        got.append((tag, item))

    for tag in "abc":
        sim.process(getter(sim, tag))

    def putter(sim):
        for i in range(3):
            yield sim.timeout(1.0)
            yield store.put(i)

    sim.process(putter(sim))
    sim.run()
    assert got == [("a", 0), ("b", 1), ("c", 2)]


# ---------------------------------------------------------------------------
# PriorityStore
# ---------------------------------------------------------------------------


def test_priority_store_orders_items(sim):
    store = PriorityStore(sim)
    for v in [5, 1, 3]:
        store.put(v)

    def getter(sim):
        out = []
        for _ in range(3):
            out.append((yield store.get()))
        return out

    p = sim.process(getter(sim))
    sim.run()
    assert p.value == [1, 3, 5]


def test_priority_store_with_tuples(sim):
    store = PriorityStore(sim)
    store.put((2, "b"))
    store.put((1, "a"))

    def getter(sim):
        return (yield store.get())

    p = sim.process(getter(sim))
    sim.run()
    assert p.value == (1, "a")
