"""Record-pool safety: no aliasing of live records, no behaviour drift.

The kernel recycles its internal single-waiter timeout/event records
through per-simulator free lists (``Simulator.timeout1`` /
``Simulator.event1``).  The contract is strict: a record returned by
the pool must never still be reachable as a *live* record (scheduled
and unfired, or fired with callbacks pending) — aliasing one would
deliver a value to the wrong waiter.  And pooling must be purely a
wall-clock optimisation: event order, sequence numbering, and every
simulated timestamp are identical with pooling forced on or off.
"""

import os
import random

import pytest

from repro.sim import Simulator

from tests.test_determinism import GOLDEN_RING_TRACE, _ring_trace


@pytest.fixture
def pool_env():
    """Restore REPRO_SIM_POOL after a test that forces it."""
    saved = os.environ.get("REPRO_SIM_POOL")
    yield
    if saved is None:
        os.environ.pop("REPRO_SIM_POOL", None)
    else:
        os.environ["REPRO_SIM_POOL"] = saved


def test_pool_never_aliases_live_records():
    """Property: interleaved allocate/fire/recycle never hands out a
    record that is still live.

    A seeded driver allocates pooled timeouts and events in a random
    interleaving, consuming some itself and letting others fire in the
    run loop; every allocation asserts the returned object is not one
    of the records currently tracked as live.  The ``live`` dict holds
    strong references, so two distinct objects can never share an id —
    a hit is a real alias.
    """
    rnd = random.Random(0xC0FFEE)
    sim = Simulator(pool=True)
    live = {}  # id(record) -> record, while scheduled & unfired
    ids_ever = set()
    reused = 0

    def on_fire(ev):
        live.pop(id(ev), None)

    def driver(sim):
        nonlocal reused
        for _ in range(3000):
            roll = rnd.random()
            if roll < 0.45:
                rec = sim.timeout1(rnd.choice((0.0, 1.0, 2.0, 7.0)))
            elif roll < 0.65:
                rec = sim.event1()
                rec.succeed(rnd.random())
            else:
                # unpooled churn in between, for interleaving realism
                handle = sim.call_later(50.0, lambda _e: None)
                yield sim.timeout1(1.0)
                handle.cancel()
                continue
            assert id(rec) not in live, "pool handed out a live record"
            if id(rec) in ids_ever:
                reused += 1
            ids_ever.add(id(rec))
            live[id(rec)] = rec
            rec.callbacks.append(on_fire)
            if rnd.random() < 0.5:
                yield rec
                live.pop(id(rec), None)

    sim.process(driver(sim))
    sim.run()
    # the property is vacuous if the pool never recycled anything
    assert reused > 100, f"pool recycled only {reused} records"


def test_pool_disabled_never_recycles(pool_env):
    """REPRO_SIM_POOL=0 switches to plain throwaway records."""
    os.environ["REPRO_SIM_POOL"] = "0"
    sim = Simulator()

    def driver(sim):
        first = sim.timeout1(1.0)
        yield first
        second = sim.timeout1(1.0)
        assert second is not first
        yield second

    sim.process(driver(sim))
    sim.run()
    assert not sim._tpool and not sim._epool


def test_pool_reuses_after_fire():
    """The same object comes back once its previous life has ended."""
    sim = Simulator(pool=True)

    def driver(sim):
        first = sim.timeout1(1.0)
        yield first
        # first is recycled only *after* this resume returns (the run
        # loop recycles once all callbacks have run), so an allocation
        # here must NOT see it...
        second = sim.timeout1(1.0)
        assert second is not first
        yield second
        # ...but one event later first HAS been recycled and comes back
        third = sim.timeout1(2.0)
        assert third is first
        yield third

    sim.process(driver(sim))
    sim.run()


@pytest.mark.parametrize("platform", sorted(GOLDEN_RING_TRACE))
@pytest.mark.parametrize("pool", ["1", "0"])
def test_ring_golden_with_pool_forced(platform, pool, pool_env):
    """The determinism goldens hold with pooling forced on AND off."""
    os.environ["REPRO_SIM_POOL"] = pool
    assert _ring_trace(platform) == GOLDEN_RING_TRACE[platform]


def test_seq_identical_with_and_without_pool(pool_env):
    """Pooling changes no sequence numbers: same event count either way."""
    counts = {}
    for pool in ("1", "0"):
        os.environ["REPRO_SIM_POOL"] = pool
        from repro.mpi import World

        world = World(4, platform="meiko", device="lowlatency")

        def main(comm):
            for i in range(3):
                if comm.rank % 2 == 0:
                    yield from comm.send(bytes(32), dest=(comm.rank + 1) % 4, tag=i)
                    yield from comm.recv(source=(comm.rank - 1) % 4, tag=i)
                else:
                    yield from comm.recv(source=(comm.rank - 1) % 4, tag=i)
                    yield from comm.send(bytes(32), dest=(comm.rank + 1) % 4, tag=i)

        world.run(main)
        counts[pool] = (world.sim._seq, world.sim.now)
    assert counts["1"] == counts["0"]
