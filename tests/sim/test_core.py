"""Unit tests for the discrete-event kernel: events, processes, time."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


# ---------------------------------------------------------------------------
# clock & timeouts
# ---------------------------------------------------------------------------


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_clock(sim):
    log = []

    def proc(sim):
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [5.0, 7.5]


def test_timeout_carries_value(sim):
    def proc(sim):
        v = yield sim.timeout(1.0, value="payload")
        return v

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "payload"


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_zero_timeout_fires_same_time(sim):
    def proc(sim):
        yield sim.timeout(0.0)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 0.0


def test_run_until_horizon_leaves_pending_events(sim):
    fired = []

    def proc(sim):
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [10.0]


def test_run_until_in_past_rejected(sim):
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_peek_reports_next_event_time(sim):
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


# ---------------------------------------------------------------------------
# deterministic ordering
# ---------------------------------------------------------------------------


def test_same_time_events_fire_in_creation_order(sim):
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcde":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_interleaving_is_deterministic():
    def run_once():
        sim = Simulator()
        order = []

        def a(sim):
            for _ in range(3):
                yield sim.timeout(2.0)
                order.append(("a", sim.now))

        def b(sim):
            for _ in range(3):
                yield sim.timeout(3.0)
                order.append(("b", sim.now))

        sim.process(a(sim))
        sim.process(b(sim))
        sim.run()
        return order

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------


def test_event_succeed_wakes_waiter(sim):
    ev = sim.event()
    got = []

    def waiter(sim, ev):
        v = yield ev
        got.append((sim.now, v))

    def firer(sim, ev):
        yield sim.timeout(3.0)
        ev.succeed(42)

    sim.process(waiter(sim, ev))
    sim.process(firer(sim, ev))
    sim.run()
    assert got == [(3.0, 42)]


def test_event_double_trigger_rejected(sim):
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_event_value_before_trigger_rejected(sim):
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_event_fail_throws_into_waiter(sim):
    class Boom(Exception):
        pass

    caught = []

    def waiter(sim, ev):
        try:
            yield ev
        except Boom as e:
            caught.append(e)

    ev = sim.event()
    sim.process(waiter(sim, ev))
    ev.fail(Boom())
    sim.run()
    assert len(caught) == 1


def test_unhandled_failed_event_aborts_run(sim):
    ev = sim.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        sim.run()


def test_defused_failure_does_not_abort(sim):
    ev = sim.event()
    ev.fail(RuntimeError("defused"))
    ev.defuse()
    sim.run()  # no raise


def test_fail_requires_exception(sim):
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_yield_already_fired_event_resumes_immediately(sim):
    ev = sim.event()
    ev.succeed("early")

    def proc(sim, ev):
        yield sim.timeout(5.0)
        v = yield ev  # fired long ago
        return (sim.now, v)

    p = sim.process(proc(sim, ev))
    sim.run()
    assert p.value == (5.0, "early")


def test_callback_after_fire_runs_immediately(sim):
    ev = sim.event()
    ev.succeed(7)
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


# ---------------------------------------------------------------------------
# processes
# ---------------------------------------------------------------------------


def test_process_return_value(sim):
    def proc(sim):
        yield sim.timeout(1.0)
        return "result"

    p = sim.process(proc(sim))
    sim.run()
    assert p.ok and p.value == "result"


def test_process_exception_propagates_to_waiter(sim):
    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def outer(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError as e:
            return str(e)

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == "inner"


def test_unwaited_process_exception_aborts_run(sim):
    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("unwaited")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="unwaited"):
        sim.run()


def test_process_is_waitable_event(sim):
    def child(sim):
        yield sim.timeout(4.0)
        return 99

    def parent(sim):
        v = yield sim.process(child(sim))
        return (sim.now, v)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == (4.0, 99)


def test_yield_from_composition(sim):
    def leaf(sim):
        yield sim.timeout(2.0)
        return 5

    def mid(sim):
        v = yield from leaf(sim)
        yield sim.timeout(1.0)
        return v * 2

    def top(sim):
        v = yield from mid(sim)
        return v + 1

    p = sim.process(top(sim))
    sim.run()
    assert p.value == 11
    assert sim.now == 3.0


def test_process_rejects_non_generator(sim):
    with pytest.raises(TypeError):
        Process(sim, lambda: None)


def test_yielding_non_event_fails_process(sim):
    def bad(sim):
        yield 42

    def outer(sim):
        with pytest.raises(SimulationError):
            yield sim.process(bad(sim))

    sim.process(outer(sim))
    sim.run()


def test_is_alive(sim):
    def proc(sim):
        yield sim.timeout(5.0)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_run_until_complete_returns_value(sim):
    def proc(sim):
        yield sim.timeout(1.0)
        return 123

    p = sim.process(proc(sim))
    assert sim.run_until_complete(p) == 123


def test_run_until_complete_reraises(sim):
    def proc(sim):
        yield sim.timeout(1.0)
        raise KeyError("boom")

    p = sim.process(proc(sim))
    with pytest.raises(KeyError):
        sim.run_until_complete(p)


def test_run_until_complete_detects_deadlock(sim):
    def proc(sim):
        yield sim.event()  # never fires

    p = sim.process(proc(sim))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(p)


def test_run_until_complete_respects_limit(sim):
    def proc(sim):
        yield sim.timeout(1000.0)

    p = sim.process(proc(sim))
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_complete(p, limit=10.0)


# ---------------------------------------------------------------------------
# interrupts
# ---------------------------------------------------------------------------


def test_interrupt_delivers_cause(sim):
    caught = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            caught.append((sim.now, i.cause))

    def interrupter(sim, victim):
        yield sim.timeout(5.0)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert caught == [(5.0, "wake up")]


def test_interrupted_process_can_rewait_original_event(sim):
    log = []

    def sleeper(sim):
        to = sim.timeout(100.0)
        try:
            yield to
        except Interrupt:
            log.append(("interrupted", sim.now))
        yield to  # resume waiting for the same timeout
        log.append(("done", sim.now))

    def interrupter(sim, victim):
        yield sim.timeout(10.0)
        victim.interrupt()

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [("interrupted", 10.0), ("done", 100.0)]


def test_interrupt_finished_process_rejected(sim):
    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_rejected(sim):
    def proc(sim):
        me = sim.active_process
        with pytest.raises(SimulationError):
            me.interrupt()
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run()


def test_uncaught_interrupt_fails_process(sim):
    def sleeper(sim):
        yield sim.timeout(100.0)

    def outer(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt("die")
        try:
            yield victim
        except Interrupt as i:
            return i.cause

    victim = sim.process(sleeper(sim))
    p = sim.process(outer(sim, victim))
    sim.run()
    assert p.value == "die"


# ---------------------------------------------------------------------------
# conditions
# ---------------------------------------------------------------------------


def test_any_of_fires_on_first(sim):
    def proc(sim):
        t1 = sim.timeout(5.0, "slow")
        t2 = sim.timeout(2.0, "fast")
        result = yield AnyOf(sim, [t1, t2])
        return (sim.now, result)

    p = sim.process(proc(sim))
    sim.run()
    t, result = p.value
    assert t == 2.0
    assert list(result.values()) == ["fast"]


def test_all_of_waits_for_all(sim):
    def proc(sim):
        t1 = sim.timeout(5.0, "a")
        t2 = sim.timeout(2.0, "b")
        result = yield AllOf(sim, [t1, t2])
        return (sim.now, sorted(result.values()))

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (5.0, ["a", "b"])


def test_empty_all_of_fires_immediately(sim):
    def proc(sim):
        result = yield AllOf(sim, [])
        return result

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == {}


def test_condition_failure_propagates(sim):
    def failer(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("child died")

    def proc(sim):
        child = sim.process(failer(sim))
        with pytest.raises(RuntimeError):
            yield AllOf(sim, [child, sim.timeout(10.0)])
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 1.0


def test_condition_mixed_simulators_rejected(sim):
    other = Simulator()
    with pytest.raises(SimulationError):
        AllOf(sim, [sim.timeout(1.0), other.timeout(1.0)])


def test_any_of_helper_method(sim):
    def proc(sim):
        yield sim.any_of([sim.timeout(1.0), sim.timeout(2.0)])
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 1.0


def test_all_of_helper_method(sim):
    def proc(sim):
        yield sim.all_of([sim.timeout(1.0), sim.timeout(2.0)])
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 2.0
